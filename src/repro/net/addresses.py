"""IP and MAC address value types.

Small immutable wrappers around integers: hashable, comparable, cheap
to copy, with the usual dotted-quad / colon-hex string forms. A
:class:`Subnet` provides membership tests and the broadcast address
used by the protocols' LAN broadcasts.
"""


class IPAddress:
    """An IPv4 address; immutable and usable as a dict key."""

    __slots__ = ("_value",)

    def __new__(cls, address):
        # Converting an address that is already an IPAddress is a hot
        # no-op on the packet path; being immutable, the instance can
        # be returned as-is instead of allocating a copy.
        if type(address) is cls:
            return address
        return super().__new__(cls)

    def __init__(self, address):
        if isinstance(address, IPAddress):
            self._value = address._value
        elif isinstance(address, int):
            if not 0 <= address <= 0xFFFFFFFF:
                raise ValueError("IPv4 integer out of range: {}".format(address))
            self._value = address
        elif isinstance(address, str):
            self._value = self._parse(address)
        else:
            raise TypeError("cannot build IPAddress from {!r}".format(address))

    @staticmethod
    def _parse(text):
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError("malformed IPv4 address: {!r}".format(text))
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError("malformed IPv4 address: {!r}".format(text))
            value = (value << 8) | octet
        return value

    @property
    def value(self):
        """The address as a 32-bit integer."""
        return self._value

    def __add__(self, offset):
        return IPAddress(self._value + int(offset))

    def __eq__(self, other):
        if isinstance(other, IPAddress):
            return self._value == other._value
        if isinstance(other, str):
            return self._value == IPAddress(other)._value
        return NotImplemented

    def __lt__(self, other):
        return self._value < IPAddress(other)._value

    def __le__(self, other):
        return self._value <= IPAddress(other)._value

    def __hash__(self):
        # No tuple wrapper: addresses key the ARP cache and every bound-IP
        # set on the frame path, so a per-hash tuple allocation is measurable
        # at cluster scale. Offsetting by a constant keeps IPAddress keys from
        # colliding bucket-for-bucket with the raw integers of the same value.
        return hash(self._value ^ 0x49500000)

    def __str__(self):
        v = self._value
        return "{}.{}.{}.{}".format((v >> 24) & 255, (v >> 16) & 255, (v >> 8) & 255, v & 255)

    def __repr__(self):
        return "IPAddress('{}')".format(self)


class MACAddress:
    """An Ethernet MAC address; immutable and usable as a dict key."""

    __slots__ = ("_value",)

    def __new__(cls, address):
        # Same identity fast path as IPAddress: immutable, so a
        # MACAddress-to-MACAddress conversion allocates nothing.
        if type(address) is cls:
            return address
        return super().__new__(cls)

    def __init__(self, address):
        if isinstance(address, MACAddress):
            self._value = address._value
        elif isinstance(address, int):
            if not 0 <= address <= 0xFFFFFFFFFFFF:
                raise ValueError("MAC integer out of range: {}".format(address))
            self._value = address
        elif isinstance(address, str):
            parts = address.split(":")
            if len(parts) != 6:
                raise ValueError("malformed MAC address: {!r}".format(address))
            value = 0
            for part in parts:
                octet = int(part, 16)
                if not 0 <= octet <= 255:
                    raise ValueError("malformed MAC address: {!r}".format(address))
                value = (value << 8) | octet
            self._value = value
        else:
            raise TypeError("cannot build MACAddress from {!r}".format(address))

    @property
    def value(self):
        """The address as a 48-bit integer."""
        return self._value

    @property
    def is_broadcast(self):
        """True for ff:ff:ff:ff:ff:ff."""
        return self._value == 0xFFFFFFFFFFFF

    def __eq__(self, other):
        if isinstance(other, MACAddress):
            return self._value == other._value
        if isinstance(other, str):
            return self._value == MACAddress(other)._value
        return NotImplemented

    def __lt__(self, other):
        return self._value < MACAddress(other)._value

    def __hash__(self):
        return hash(self._value ^ 0x4D410000)

    def __str__(self):
        octets = [(self._value >> shift) & 255 for shift in (40, 32, 24, 16, 8, 0)]
        return ":".join("{:02x}".format(o) for o in octets)

    def __repr__(self):
        return "MACAddress('{}')".format(self)


BROADCAST_MAC = MACAddress(0xFFFFFFFFFFFF)


class Subnet:
    """An IPv4 subnet in CIDR form, e.g. ``Subnet('192.168.0.0/24')``."""

    __slots__ = ("network", "prefix", "_mask", "_broadcast")

    def __init__(self, cidr):
        if isinstance(cidr, Subnet):
            self.network = cidr.network
            self.prefix = cidr.prefix
            self._mask = cidr._mask
            self._broadcast = cidr._broadcast
            return
        base, _, prefix_text = cidr.partition("/")
        if not prefix_text:
            raise ValueError("subnet needs a /prefix: {!r}".format(cidr))
        prefix = int(prefix_text)
        if not 0 <= prefix <= 32:
            raise ValueError("bad prefix length: {}".format(prefix))
        self.prefix = prefix
        self._mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF if prefix else 0
        self.network = IPAddress(IPAddress(base).value & self._mask)
        # Precomputed once: the broadcast address sits on the per-packet
        # delivery path (every LAN broadcast compares against it), and a
        # Subnet is immutable, so building a fresh IPAddress per lookup
        # is pure allocation churn.
        self._broadcast = IPAddress(self.network.value | (~self._mask & 0xFFFFFFFF))

    def __contains__(self, address):
        if type(address) is not IPAddress:
            address = IPAddress(address)
        return (address._value & self._mask) == self.network._value

    @property
    def broadcast_address(self):
        """The all-ones host address of this subnet."""
        return self._broadcast

    def host(self, index):
        """The ``index``-th host address within the subnet."""
        address = IPAddress(self.network.value + index)
        if address not in self:
            raise ValueError("host index {} outside {}".format(index, self))
        return address

    def __eq__(self, other):
        if isinstance(other, Subnet):
            return self.network == other.network and self.prefix == other.prefix
        return NotImplemented

    def __hash__(self):
        return hash(("Subnet", self.network, self.prefix))

    def __str__(self):
        return "{}/{}".format(self.network, self.prefix)

    def __repr__(self):
        return "Subnet('{}')".format(self)
