"""Simulated hosts: NICs, ARP, UDP sockets, and IP output routing.

A Host is the unit that crashes and recovers. Crash semantics: a
crashed host neither receives nor sends; its NICs stay attached to the
LAN (so stale ARP entries elsewhere keep blackholing traffic toward its
MACs — exactly the failure mode the paper's fail-over repairs).
"""

from repro.net.addresses import BROADCAST_MAC, IPAddress
from repro.net.arp import ArpService
from repro.net.nic import Nic
from repro.net.packet import (
    ARP_ETHERTYPE,
    IP_ETHERTYPE,
    EthernetFrame,
    IpPacket,
    UdpDatagram,
)
from repro.net.sockets import UdpSocket
from repro.sim.process import Process


class Host(Process):
    """One machine on the simulated network."""

    def __init__(self, sim, name, arp_cache_lifetime=60.0):
        super().__init__(sim, name)
        self._nics = []
        self.clock_skew = 0.0
        self.arp = ArpService(self, cache_lifetime=arp_cache_lifetime)
        self._sockets = []
        self.default_gateway = None
        self.ip_forwarding = False
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self._services = []
        self._load_mean_delay = 0.0
        self._load_rng = None
        self._slow_delivery_lag = 0.0

    # ------------------------------------------------------------------
    # interfaces

    def add_nic(self, lan, primary_ip, name=None):
        """Attach a new interface on ``lan`` with a stationary address."""
        nic = Nic(self, lan, primary_ip, name=name)
        self._nics.append(nic)
        return nic

    @property
    def nics(self):
        """All interfaces (tuple snapshot)."""
        return tuple(self._nics)

    def nic_on(self, lan):
        """The interface attached to ``lan``, or None."""
        for nic in self._nics:
            if nic.lan is lan:
                return nic
        return None

    def local_ips(self):
        """Every IP bound to an up interface."""
        addresses = set()
        for nic in self._nics:
            if nic.up:
                addresses.update(nic.bound_ips)
        return addresses

    def owns_ip(self, address):
        """True when ``address`` is bound to one of this host's up NICs."""
        if type(address) is not IPAddress:
            address = IPAddress(address)
        # Flat loop over the NICs' bound sets: this sits on the per-frame
        # ARP path (every broadcast request lands here on every host), so
        # the generator-expression form costs real time at cluster scale.
        for nic in self._nics:
            if nic.up and address in nic._bound:
                return True
        return False

    # ------------------------------------------------------------------
    # gray degradation: slowdown and clock skew (see docs/FAULTS.md)

    @property
    def local_time(self):
        """This host's wall clock: simulated time plus its skew offset."""
        return self.sim.now + self.clock_skew

    def set_clock_skew(self, offset):
        """Offset this host's local clock by ``offset`` seconds (±60 max).

        Skew only affects *readings* of the local clock (ARP cache
        aging, anything consulting :attr:`local_time`); timers measure
        durations, which skew does not change. The bound rejects
        nonsense offsets that no NTP-adrift machine would exhibit.
        """
        offset = float(offset)
        if not -60.0 <= offset <= 60.0:
            raise ValueError("clock skew must be within +/-60s, got {}".format(offset))
        self.clock_skew = offset
        self.trace("host", "clock_skew", offset=offset)

    def set_slowdown(self, factor, delivery_lag=None):
        """Stretch this host's local timers by ``factor`` (1.0 = normal).

        Models a wedged-but-alive machine: every managed timer delay
        (heartbeats, timeouts, retries) of the host *and its registered
        services* runs ``factor`` times late, and user-space datagram
        delivery incurs a fixed ``delivery_lag`` (default: scaled up
        from the extra stretch). The machine still answers ARP at full
        speed — the kernel is fine, the box is just slow — which is
        precisely the gray failure a K-miss detector must ride out.
        """
        factor = float(factor)
        if factor < 1.0:
            raise ValueError("slowdown factor must be >= 1.0, got {}".format(factor))
        self.time_scale = factor
        for service in self._services:
            service.time_scale = factor
        if delivery_lag is None:
            delivery_lag = 0.001 * (factor - 1.0)
        self._slow_delivery_lag = float(delivery_lag)
        self.trace("host", "slowdown", factor=factor)

    def set_load(self, mean_delay):
        """Model a loaded machine: user-space datagram delivery incurs
        an exponential scheduling delay with the given mean (seconds).

        Kernel work — ARP, IP forwarding — is unaffected, and sockets
        opened with ``realtime=True`` (real-time priority processes,
        §6) bypass the delay entirely. Zero disables the model.
        """
        self._load_mean_delay = float(mean_delay)
        if self._load_mean_delay > 0 and self._load_rng is None:
            self._load_rng = self.sim.rng.stream("load/{}".format(self.name))

    def set_default_gateway(self, gateway_ip):
        """Set the off-link next hop for destinations outside all subnets."""
        self.default_gateway = IPAddress(gateway_ip)

    # ------------------------------------------------------------------
    # crash / recovery

    def register_service(self, process):
        """Tie a daemon process's lifetime to this host (dies on crash).

        A service registered on a slowed host inherits the slowdown —
        a restarted daemon does not escape the sick machine it runs on.
        """
        self._services.append(process)
        if self.time_scale != 1.0:
            process.time_scale = self.time_scale

    def crash(self):
        """Fail-stop: kill services and timers, stop receiving and sending.

        All sockets close (nothing survives a machine failure); daemons
        must be restarted explicitly after :meth:`recover`.
        """
        self.trace("host", "crash")
        for service in self._services:
            service.stop()
        self._services = []
        for socket in list(self._sockets):
            socket.closed = True
        self._sockets = []
        self.stop()

    def recover(self):
        """Reboot: fresh ARP cache, interfaces reset to primaries only.

        A reboot clears a slowdown (the wedged software is gone) but
        not clock skew — the drifted hardware clock survives a reboot.
        """
        self.restart()
        self.time_scale = 1.0
        self._slow_delivery_lag = 0.0
        self.arp.cache = type(self.arp.cache)(lambda: self.local_time)
        for nic in self._nics:
            nic.reset()
        self.trace("host", "recover")

    # ------------------------------------------------------------------
    # frame input

    def handle_frame(self, nic, frame):
        """Dispatch an incoming frame from one of this host's NICs."""
        if not self.alive:
            return
        if frame.ethertype == ARP_ETHERTYPE:
            self.arp.handle(nic, frame.payload)
        elif frame.ethertype == IP_ETHERTYPE:
            self._handle_ip(nic, frame.payload)

    def _handle_ip(self, nic, packet):
        dst = packet.dst_ip
        if dst == nic.lan.subnet.broadcast_address or self.owns_ip(dst):
            self._deliver_local(packet)
        elif self.ip_forwarding:
            self.forward_packet(packet)
        else:
            self.packets_dropped += 1

    def _deliver_local(self, packet):
        datagram = packet.payload
        if type(datagram) is not UdpDatagram:
            self.packets_dropped += 1
            return
        dst_ip = packet.dst_ip
        dst_port = datagram.dst_port
        for socket in self._sockets:
            if socket.matches(dst_ip, dst_port):
                lag = self._slow_delivery_lag
                if lag and not socket.realtime:
                    self.sim.scheduler.after(
                        lag,
                        self._deliver_socket,
                        socket,
                        datagram,
                        packet,
                    )
                elif self._load_mean_delay > 0 and not socket.realtime:
                    delay = self._load_rng.expovariate(1.0 / self._load_mean_delay)
                    self.sim.scheduler.after(
                        delay,
                        socket.deliver,
                        datagram.payload,
                        packet.src_ip,
                        datagram.src_port,
                        packet.dst_ip,
                    )
                else:
                    socket.deliver(
                        datagram.payload, packet.src_ip, datagram.src_port, packet.dst_ip
                    )
                return
        self.packets_dropped += 1

    def _deliver_socket(self, socket, datagram, packet):
        # Deferred user-space delivery on a slowed host; the socket may
        # have closed while the datagram sat in the (slow) run queue.
        if not self.alive or socket.closed:
            return
        socket.deliver(
            datagram.payload, packet.src_ip, datagram.src_port, packet.dst_ip
        )

    # ------------------------------------------------------------------
    # sockets and UDP output

    def open_udp(self, port, handler, bind_ip=None, realtime=False):
        """Bind a UDP socket; ``handler(payload, (src_ip, src_port), (dst_ip, dst_port))``."""
        for socket in self._sockets:
            if socket.port == port and socket.bind_ip == (
                IPAddress(bind_ip) if bind_ip is not None else None
            ):
                raise ValueError("port {} already bound on {}".format(port, self.name))
        socket = UdpSocket(self, port, handler, bind_ip=bind_ip, realtime=realtime)
        self._sockets.append(socket)
        return socket

    def release_socket(self, socket):
        """Remove a closed socket (called by UdpSocket.close)."""
        if socket in self._sockets:
            self._sockets.remove(socket)

    def send_udp(self, payload, dst_ip, dst_port, src_port=0, src_ip=None):
        """Build and route one UDP/IP packet."""
        if not self.alive:
            return
        if type(dst_ip) is not IPAddress:
            dst_ip = IPAddress(dst_ip)
        datagram = UdpDatagram(src_port, int(dst_port), payload)
        nic = self._output_nic(dst_ip)
        if nic is None:
            self.packets_dropped += 1
            self.trace("ip", "no_route", dst=str(dst_ip))
            return
        if src_ip is None:
            src_ip = nic.primary_ip
        if src_ip is None:
            self.packets_dropped += 1
            return
        if type(src_ip) is not IPAddress:
            src_ip = IPAddress(src_ip)
        self.send_ip(IpPacket(src_ip, dst_ip, datagram))

    # ------------------------------------------------------------------
    # IP output routing

    def send_ip(self, packet):
        """Route an IP packet out of the correct interface."""
        if not self.alive:
            return
        dst = packet.dst_ip
        for nic in self._nics:
            if nic.up and dst == nic.lan.subnet.broadcast_address:
                frame = EthernetFrame(nic.mac, BROADCAST_MAC, IP_ETHERTYPE, packet)
                nic.transmit(frame)
                return
        nic, next_hop = self._route(dst)
        if nic is None:
            self.packets_dropped += 1
            self.trace("ip", "no_route", dst=str(dst))
            return
        self.arp.resolve_and_send(nic, next_hop, packet)

    def forward_packet(self, packet):
        """Router-style forwarding hook; overridden to consult route tables."""
        if packet.ttl <= 1:
            self.packets_dropped += 1
            return
        self.packets_forwarded += 1
        self.send_ip(packet.forwarded_copy())

    def _route(self, dst_ip):
        """(nic, next_hop_ip) for ``dst_ip``: on-link beats gateway."""
        for nic in self._nics:
            if nic.up and dst_ip in nic.lan.subnet:
                return nic, dst_ip
        if self.default_gateway is not None:
            for nic in self._nics:
                if nic.up and self.default_gateway in nic.lan.subnet:
                    return nic, self.default_gateway
        return None, None

    def _output_nic(self, dst_ip):
        nic, _ = self._route(dst_ip)
        return nic
