"""Simulation-time metrics: counters, gauges, time-weighted histograms.

The registry is the quantitative side of observability (the qualitative
side — structured events — lives in :mod:`repro.sim.trace`). Every
instrument reads *simulated* time only, iteration order is
deterministic (sorted keys, never insertion order), and the whole layer
can be disabled at construction, in which case instrument handles are
shared no-op singletons so instrumented hot paths pay one dynamic
dispatch and nothing else.

Keys are ``(name, node, labels)``:

* ``name`` — dotted metric name whose first segment is the layer
  (``sim.``, ``net.``, ``gcs.``, ``core.``, ``workload.``);
* ``node`` — the emitting component (host, daemon, LAN, NIC, ...);
* ``labels`` — optional ``key=value`` refinements (e.g. a state name).
"""


class Counter:
    """Monotonic event count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def summary(self):
        return {"value": self.value}


class Gauge:
    """Last-written instantaneous value."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        """Replace the current value."""
        self.value = value

    def add(self, delta):
        """Shift the current value by ``delta``."""
        self.value += delta

    def summary(self):
        return {"value": self.value}


class TimeWeightedHistogram:
    """A value tracked over simulated time, summarised by *duration*.

    ``observe(v)`` records that the quantity became ``v`` now; the
    summary weights each value by how long it was held, so a queue that
    spends 99 % of the run empty reports a time-average near zero no
    matter how many samples landed while it was briefly deep. All
    arithmetic is plain float accumulation in observation order, which
    keeps summaries byte-identical across replays.
    """

    kind = "timeseries"
    __slots__ = (
        "_clock",
        "value",
        "minimum",
        "maximum",
        "samples",
        "_last_time",
        "_weighted_sum",
        "_elapsed",
    )

    def __init__(self, clock):
        self._clock = clock
        self.value = None
        self.minimum = None
        self.maximum = None
        self.samples = 0
        self._last_time = None
        self._weighted_sum = 0.0
        self._elapsed = 0.0

    def observe(self, value):
        """The tracked quantity is ``value`` as of the current sim time."""
        now = self._clock()
        if self.value is not None:
            held = now - self._last_time
            self._weighted_sum += self.value * held
            self._elapsed += held
        value = float(value)
        self.value = value
        self._last_time = now
        self.samples += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def time_average(self):
        """Duration-weighted mean up to the current simulated instant."""
        if self.value is None:
            return None
        tail = self._clock() - self._last_time
        elapsed = self._elapsed + tail
        if elapsed <= 0.0:
            return self.value
        return (self._weighted_sum + self.value * tail) / elapsed

    def summary(self):
        average = self.time_average()
        return {
            "last": self.value,
            "min": self.minimum,
            "max": self.maximum,
            "time_avg": None if average is None else round(average, 9),
            "samples": self.samples,
        }


class _NullInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    __slots__ = ()
    kind = "null"
    value = 0

    def inc(self, amount=1):
        return None

    def set(self, value):
        return None

    def add(self, delta):
        return None

    def observe(self, value):
        return None

    def time_average(self):
        return None

    def summary(self):
        return {}


NULL_INSTRUMENT = _NullInstrument()

_FACTORIES = {
    "counter": lambda clock: Counter(),
    "gauge": lambda clock: Gauge(),
    "timeseries": TimeWeightedHistogram,
}


class MetricsRegistry:
    """All instruments of one simulation run, keyed ``(name, node, labels)``."""

    def __init__(self, clock=None, enabled=True):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.enabled = bool(enabled)
        self._instruments = {}

    def bind_clock(self, clock):
        """Attach the callable returning current simulated time.

        Instruments created before the bind keep the old clock, so bind
        before instrumenting (Simulation does this in its constructor).
        """
        self._clock = clock

    # ------------------------------------------------------------------
    # instrument access (get-or-create)

    def _get(self, kind, name, node, labels):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = (name, node, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = _FACTORIES[kind](self._clock)
            self._instruments[key] = instrument
        elif instrument.kind != kind:
            raise TypeError(
                "metric {} already registered as {}, not {}".format(
                    key, instrument.kind, kind
                )
            )
        return instrument

    def counter(self, name, node="", **labels):
        """The counter for ``(name, node, labels)``, created on first use."""
        return self._get("counter", name, node, labels)

    def gauge(self, name, node="", **labels):
        """The gauge for ``(name, node, labels)``, created on first use."""
        return self._get("gauge", name, node, labels)

    def timeseries(self, name, node="", **labels):
        """The time-weighted histogram for ``(name, node, labels)``."""
        return self._get("timeseries", name, node, labels)

    # ------------------------------------------------------------------
    # one-shot conveniences (cold paths; hot paths pre-bind instruments)

    def inc(self, name, node="", amount=1, **labels):
        """Increment a counter without holding the handle."""
        self.counter(name, node, **labels).inc(amount)

    def set(self, name, value, node="", **labels):
        """Set a gauge without holding the handle."""
        self.gauge(name, node, **labels).set(value)

    def observe(self, name, value, node="", **labels):
        """Feed a time-weighted histogram without holding the handle."""
        self.timeseries(name, node, **labels).observe(value)

    # ------------------------------------------------------------------
    # deterministic read side

    def collect(self):
        """Every instrument as ``(name, node, labels, instrument)``, sorted."""
        return [
            (name, node, labels, self._instruments[(name, node, labels)])
            for name, node, labels in sorted(self._instruments)
        ]

    def totals(self):
        """Counter totals summed across nodes/labels: ``{name: value}``.

        The compact summary embedded in ``repro check`` trial results;
        counters only, so values are exact integers.
        """
        totals = {}
        for name, _node, _labels, instrument in self.collect():
            if instrument.kind == "counter":
                totals[name] = totals.get(name, 0) + instrument.value
        return totals

    def layers(self):
        """Distinct layer prefixes present (first dotted name segment)."""
        seen = set()
        for name, _node, _labels, _instrument in self.collect():
            seen.add(name.split(".", 1)[0])
        return sorted(seen)

    def __len__(self):
        return len(self._instruments)
