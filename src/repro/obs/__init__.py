"""repro.obs — simulation-time observability.

Three pieces:

* :mod:`repro.obs.metrics` — counters, gauges and time-weighted
  histograms keyed by ``(name, node, labels)``, reading simulated time
  only;
* :mod:`repro.obs.episodes` — fail-over episodes stitched from the
  structured trace, with per-phase durations;
* :mod:`repro.obs.coverage` — the periodic cluster sampler feeding the
  coverage/duplication time series.

Only the leaf modules (metrics, episodes) are re-exported here: the
simulation substrate imports :class:`MetricsRegistry` through this
package, so pulling :mod:`repro.obs.coverage` (which imports the core
layer) into the package init would create an import cycle. Import
``ClusterObserver``, the dashboard renderers and the ``repro observe``
driver from their modules directly.
"""

from repro.obs.degraded import (
    DegradedSpan,
    degraded_spans,
    degraded_spans_as_dicts,
)
from repro.obs.episodes import (
    FailoverEpisode,
    episodes_as_dicts,
    extract_episodes,
    first_complete_episode,
)
from repro.obs.metrics import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    MetricsRegistry,
    TimeWeightedHistogram,
)
from repro.obs.stabilization import (
    StabilizationSpan,
    stabilization_spans,
    stabilization_spans_as_dicts,
)

__all__ = [
    "Counter",
    "DegradedSpan",
    "FailoverEpisode",
    "Gauge",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "StabilizationSpan",
    "TimeWeightedHistogram",
    "degraded_spans",
    "degraded_spans_as_dicts",
    "episodes_as_dicts",
    "extract_episodes",
    "first_complete_episode",
    "stabilization_spans",
    "stabilization_spans_as_dicts",
]
