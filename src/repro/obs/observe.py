"""The ``repro observe`` driver: one instrumented fail-over run.

Builds the quickstart scenario (a small web cluster with tuned GCS
timeouts and a short maturity window), lets it converge, injects one
fault against the owner of the probed virtual address, and returns the
full observability picture: the metrics registry, the extracted
fail-over episodes, and the probe measurements. Everything is a pure
function of ``(seed, shape, fault)``, so two runs with the same
arguments render byte-identical output — the CI smoke test diffs the
JSON-lines export of a double run.
"""

from repro.apps.webcluster import WebClusterScenario
from repro.gcs.config import SpreadConfig
from repro.obs.coverage import ClusterObserver
from repro.obs.episodes import extract_episodes, first_complete_episode

#: fault modes accepted by ``repro observe --fault``.
FAULT_MODES = ("crash", "nic_down", "shutdown")


class ObservationResult:
    """Everything one observed run produced."""

    __slots__ = (
        "scenario",
        "seed",
        "fault",
        "fault_time",
        "victim",
        "episodes",
        "interruption",
        "observer",
    )

    def __init__(self, scenario, seed, fault, fault_time, victim, episodes,
                 interruption, observer):
        self.scenario = scenario
        self.seed = seed
        self.fault = fault
        self.fault_time = fault_time
        self.victim = victim
        self.episodes = episodes
        self.interruption = interruption
        self.observer = observer

    @property
    def metrics(self):
        """The run's :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self.scenario.sim.metrics

    def failover_episode(self):
        """The complete episode caused by the injected fault, or None."""
        return first_complete_episode(self.episodes, after=self.fault_time)


def run_observation(
    seed=7,
    n_servers=3,
    n_vips=6,
    fault="crash",
    settle=10.0,
    observe_for=10.0,
    metrics_enabled=True,
):
    """Run the instrumented quickstart fail-over and observe everything.

    Mirrors ``examples/quickstart.py``: ``n_servers`` servers share
    ``n_vips`` virtual addresses, converge for ``settle`` simulated
    seconds, then the owner of the probed address is removed with
    ``fault`` and the cluster runs ``observe_for`` more seconds.
    """
    if fault not in FAULT_MODES:
        raise ValueError(
            "unknown fault mode {!r}; expected one of {}".format(fault, FAULT_MODES)
        )
    scenario = WebClusterScenario(
        seed=seed,
        n_servers=n_servers,
        n_vips=n_vips,
        spread_config=SpreadConfig.tuned(),
        wackamole_overrides={"maturity_timeout": 2.0},
        metrics_enabled=metrics_enabled,
    )
    scenario.start()
    scenario.start_probe(scenario.vips[0])
    observer = ClusterObserver(scenario.sim, scenario.wacks).start()
    scenario.sim.run_for(settle)

    fault_time = scenario.sim.now
    victim = scenario.kill_owner_of(scenario.vips[0], mode=fault)
    scenario.sim.run_for(observe_for)
    scenario.probe.stop_probing()
    observer.stop()

    episodes = extract_episodes(scenario.sim.trace.records)
    interruption = scenario.probe.failover_interruption(after=fault_time)
    return ObservationResult(
        scenario=scenario,
        seed=seed,
        fault=fault,
        fault_time=fault_time,
        victim=victim.host.name,
        episodes=episodes,
        interruption=interruption,
        observer=observer,
    )
