"""Time-to-stabilize spans: corruption onset to self-repair.

State-corruption faults (``docs/FAULTS.md``, "State corruption") have
no healing action of their own — the cluster is expected to *notice*
the corrupted state through its periodic stabilization audits and
repair it through the ordinary protocol paths. This module stitches
that loop out of the trace: each ``fault/injector corrupt_*`` record
opens a span, and the first subsequent ``stabilize/repair`` record
emitted by the corrupted process closes it. The span's duration is the
time-to-stabilize the experiments table reports.

The audit is not the only repair path. A corrupted view, counter or
epoch is also rewritten wholesale when the daemon installs a fresh
view — a dropped member's own heartbeats trigger a gather through
``on_foreign_traffic`` before any audit tick fires — so those spans
also close on the daemon's next ``membership/install`` record
(``end_cause="view_change"``). A supervisor restart replaces the
daemon, corrupted state and all (``end_cause="supervisor_restart"``),
and a host crash does the same the hard way (``end_cause="crash"``).

Spans can legitimately stay open (``end=None``):

* a ``poison_arp`` mutation is repaired on the *client* side by the
  owner's periodic gratuitous re-announcement, which emits no
  stabilization record;
* a ``noop`` mutation found nothing to corrupt.

Like episode and degraded-span extraction this is a pure function of
the trace, so the span lists ride along in check artifacts and must
replay byte-identically (``repro check --replay`` compares them).
"""

CORRUPTION_EVENTS = (
    "corrupt_vip_table",
    "corrupt_membership",
    "corrupt_sequence",
    "corrupt_epoch",
)

#: Corruptions of GCS state that a fresh view install rewrites wholesale.
_VIEW_SCOPED = ("corrupt_membership", "corrupt_sequence", "corrupt_epoch")


def _round(value):
    """Stable rounding for serialised times/durations (ns resolution)."""
    return None if value is None else round(value, 9)


class StabilizationSpan:
    """One corruption's detect-and-repair window."""

    __slots__ = ("kind", "target", "mutation", "start", "end", "end_cause", "invariant")

    def __init__(self, kind, target, mutation, start):
        self.kind = kind
        self.target = target
        self.mutation = mutation
        self.start = start
        self.end = None
        self.end_cause = None
        self.invariant = None

    @property
    def duration(self):
        if self.end is None:
            return None
        return self.end - self.start

    def close(self, time, cause, invariant=None):
        self.end = time
        self.end_cause = cause
        self.invariant = invariant

    def to_dict(self):
        return {
            "kind": self.kind,
            "target": self.target,
            "mutation": self.mutation,
            "start": _round(self.start),
            "end": _round(self.end),
            "duration": _round(self.duration),
            "end_cause": self.end_cause,
            "invariant": self.invariant,
        }

    def __repr__(self):
        return "StabilizationSpan({}, {}, {:.4f}..{})".format(
            self.kind,
            self.target,
            self.start,
            "open" if self.end is None else "{:.4f}".format(self.end),
        )


def _host_of(name):
    """The host part of a daemon name ("spread@s2-r1" -> "s2")."""
    return name.split("@", 1)[-1].split("-", 1)[0]


def stabilization_spans(records):
    """Stitch the trace into a list of :class:`StabilizationSpan`.

    A span closes on the first ``stabilize``-category ``repair`` record
    from the corrupted process (matched by name), or on a crash of that
    process's host (``end_cause="crash"``). ``noop`` mutations never
    open a span at all.
    """
    spans = []
    open_spans = []
    for record in records:
        if record.category == "fault" and record.source == "injector":
            event = record.event
            target = record.details.get("target")
            if event in CORRUPTION_EVENTS:
                param = record.details.get("param") or {}
                mutation = param.get("mutation")
                if mutation == "noop":
                    continue
                spans.append(StabilizationSpan(event, target, mutation, record.time))
                open_spans.append(spans[-1])
            elif event == "crash":
                dead = [
                    span for span in open_spans if _host_of(span.target) == target
                ]
                for span in dead:
                    span.close(record.time, "crash")
                open_spans = [s for s in open_spans if s not in dead]
        elif record.category == "stabilize" and record.event == "repair":
            source = record.source
            repaired = [span for span in open_spans if span.target == source]
            if repaired:
                invariant = record.details.get("invariant")
                for span in repaired:
                    span.close(record.time, "repair", invariant=invariant)
                open_spans = [s for s in open_spans if s not in repaired]
        elif record.category == "membership" and record.event == "install":
            source = record.source
            rewritten = [
                span
                for span in open_spans
                if span.kind in _VIEW_SCOPED and span.target == source
            ]
            for span in rewritten:
                span.close(record.time, "view_change")
            open_spans = [s for s in open_spans if s not in rewritten]
        elif record.category == "supervisor" and record.event == "restart_spread":
            old = "spread@{}".format(record.details.get("old"))
            replaced = [span for span in open_spans if span.target == old]
            for span in replaced:
                span.close(record.time, "supervisor_restart")
            open_spans = [s for s in open_spans if s not in replaced]
    return spans


def stabilization_spans_as_dicts(records):
    """``stabilization_spans`` serialised — the replayable artifact form."""
    return [span.to_dict() for span in stabilization_spans(records)]
