"""Render observability state: text dashboard and JSON-lines export.

Both renderers are pure functions of (registry, episodes): deterministic
input produces byte-identical output, which makes the exports diffable
across replays. The JSON-lines form is one self-describing object per
line (``header`` / ``metric`` / ``episode``), dumped with sorted keys
and compact separators so the bytes are stable.
"""

import json

from repro.obs.episodes import first_complete_episode


def _format_table(headers, rows):
    """Minimal fixed-width table (no external formatting deps)."""
    table = [list(headers)] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _format_value(instrument):
    """One-cell summary of an instrument."""
    if instrument.kind in ("counter", "gauge"):
        return str(instrument.value)
    summary = instrument.summary()

    def fmt(value):
        if value is None:
            return "-"
        if isinstance(value, float):
            return "{:.4g}".format(value)
        return str(value)

    return "last={} min={} max={} avg={} n={}".format(
        fmt(summary["last"]), fmt(summary["min"]), fmt(summary["max"]),
        fmt(summary["time_avg"]), summary["samples"],
    )


def metric_rows(registry):
    """Deterministic ``[{name, node, labels, kind, summary}]`` rows."""
    rows = []
    for name, node, labels, instrument in registry.collect():
        rows.append(
            {
                "name": name,
                "node": node,
                "labels": {key: value for key, value in labels},
                "kind": instrument.kind,
                "summary": instrument.summary(),
            }
        )
    return rows


# ----------------------------------------------------------------------
# text dashboard


def render_dashboard(registry, episodes=(), title="observability dashboard"):
    """Multi-section text dashboard over a registry and episode list."""
    lines = [title, "=" * len(title), ""]

    layers = registry.layers()
    lines.append(
        "{} instrument(s) across {} layer(s): {}".format(
            len(registry), len(layers), ", ".join(layers) or "-"
        )
    )
    lines.append("")

    rows = []
    for name, node, labels, instrument in registry.collect():
        label_text = ",".join("{}={}".format(k, v) for k, v in labels)
        rows.append((name, node, label_text or "-", _format_value(instrument)))
    if rows:
        lines.append(_format_table(("metric", "node", "labels", "value"), rows))
        lines.append("")

    lines.append(render_episodes(episodes).rstrip("\n"))
    return "\n".join(lines).rstrip("\n") + "\n"


def render_episodes(episodes):
    """Text table of fail-over episodes with per-phase durations."""
    episodes = list(episodes)
    if not episodes:
        return "no fail-over episodes observed\n"
    lines = ["fail-over episodes", ""]
    rows = []
    for episode in episodes:
        phases = episode.phase_durations()

        def ms(value):
            return "-" if value is None else "{:.1f}ms".format(value * 1000.0)

        rows.append(
            (
                episode.index,
                episode.trigger_kind,
                "{:.3f}".format(episode.trigger_time),
                episode.victim or "-",
                "yes" if episode.complete else "no",
                ms(phases["detection"]),
                ms(phases["membership"]),
                ms(phases["gather"]),
                ms(phases["arp"]),
                ms(phases["client_recovery"]),
                ms(phases["total"]),
            )
        )
    lines.append(
        _format_table(
            ("#", "trigger", "t", "victim", "complete", "detect", "membership",
             "gather", "arp", "client", "total"),
            rows,
        )
    )
    return "\n".join(lines) + "\n"


def render_observation(result):
    """Dashboard for one :class:`~repro.obs.observe.ObservationResult`."""
    title = "repro observe — seed {}, {} against {} at t={:.3f}".format(
        result.seed, result.fault, result.victim, result.fault_time
    )
    text = render_dashboard(result.metrics, result.episodes, title=title)
    lines = [text.rstrip("\n"), ""]
    episode = result.failover_episode()
    if episode is not None:
        phases = episode.phase_durations()
        lines.append(
            "fault episode #{}: converged {:.1f}ms after the fault".format(
                episode.index,
                (phases["total"] or 0.0) * 1000.0,
            )
        )
    if result.interruption is not None:
        lines.append(
            "probe interruption: {:.1f}ms".format(result.interruption * 1000.0)
        )
    return "\n".join(lines).rstrip("\n") + "\n"


# ----------------------------------------------------------------------
# JSON-lines export


def _dump(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def jsonl_export(registry, episodes=(), header=None):
    """One JSON object per line: optional header, metrics, episodes.

    Dumped with sorted keys and compact separators; same state in,
    same bytes out.
    """
    lines = []
    if header is not None:
        payload = {"type": "header"}
        payload.update(header)
        lines.append(_dump(payload))
    for row in metric_rows(registry):
        payload = {"type": "metric"}
        payload.update(row)
        lines.append(_dump(payload))
    for episode in episodes:
        payload = {"type": "episode"}
        payload.update(episode.to_dict())
        lines.append(_dump(payload))
    return "\n".join(lines) + "\n"


def jsonl_observation(result):
    """JSON-lines export for one observation run."""
    header = {
        "seed": result.seed,
        "fault": result.fault,
        "fault_time": round(result.fault_time, 9),
        "victim": result.victim,
        "interruption": (
            None if result.interruption is None else round(result.interruption, 9)
        ),
        "layers": result.metrics.layers(),
    }
    return jsonl_export(result.metrics, result.episodes, header=header)
