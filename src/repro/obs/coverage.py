"""Continuous cluster observation: coverage, duplication, daemon states.

This is the sampling half of the observability layer. A
:class:`ClusterObserver` polls a set of Wackamole daemons on a fixed
simulated period, keeps the raw samples, and feeds the cluster-level
time-weighted metrics (``core.vips_covered``, ``core.vips_duplicated``,
``core.daemons_run``, ``core.coverage_gap``) into the simulation's
:class:`~repro.obs.metrics.MetricsRegistry`, so a dashboard can report
*how long* the pool sat below full coverage, not just that it dipped.

:mod:`repro.experiments.timeline` builds its rendering convenience on
top of this class; the sampling logic lives here.
"""

from repro.core.state import GATHER, RUN


class ClusterSample:
    """One observation instant."""

    __slots__ = ("time", "covered", "duplicated", "run_daemons", "gather_daemons",
                 "live_daemons")

    def __init__(self, time, covered, duplicated, run_daemons, gather_daemons,
                 live_daemons):
        self.time = time
        self.covered = covered
        self.duplicated = duplicated
        self.run_daemons = run_daemons
        self.gather_daemons = gather_daemons
        self.live_daemons = live_daemons

    def __repr__(self):
        return "ClusterSample(t={:.2f}, covered={}, dup={}, run={})".format(
            self.time, self.covered, self.duplicated, self.run_daemons
        )


class ClusterObserver:
    """Periodic sampler over a set of Wackamole daemons."""

    def __init__(self, sim, wacks, interval=0.1, node="cluster"):
        self.sim = sim
        self.wacks = list(wacks)
        self.interval = float(interval)
        self.samples = []
        self._running = False
        metrics = sim.metrics
        self._m_covered = metrics.timeseries("core.vips_covered", node=node)
        self._m_duplicated = metrics.timeseries("core.vips_duplicated", node=node)
        self._m_run = metrics.timeseries("core.daemons_run", node=node)
        # Cumulative simulated seconds observed with >= 1 VIP uncovered:
        # the operator-facing "coverage gap" number.
        self._m_gap = metrics.counter("core.coverage_gap_samples", node=node)
        self._slot_count = len(self._all_slots())

    def start(self):
        """Begin sampling every ``interval`` simulated seconds."""
        if not self._running:
            self._running = True
            self._tick()
        return self

    def stop(self):
        """Stop sampling (recorded samples are kept)."""
        self._running = False

    def _tick(self):
        if not self._running:
            return
        sample = self._observe()
        self.samples.append(sample)
        self._m_covered.observe(sample.covered)
        self._m_duplicated.observe(sample.duplicated)
        self._m_run.observe(sample.run_daemons)
        if sample.covered < self._slot_count:
            self._m_gap.inc()
        self.sim.after(self.interval, self._tick)

    def _all_slots(self):
        slots = []
        for wack in self.wacks:
            for slot in wack.config.slot_ids():
                if slot not in slots:
                    slots.append(slot)
        return slots

    def _observe(self):
        slots = self._all_slots()
        covered = 0
        duplicated = 0
        live = [w for w in self.wacks if w.alive and w.host.alive]
        for slot in slots:
            owners = 0
            for wack in live:
                group = wack.config.group(slot)
                if all(wack.host.owns_ip(a) for a in group.addresses):
                    owners += 1
            if owners >= 1:
                covered += 1
            if owners > 1:
                duplicated += 1
        return ClusterSample(
            time=self.sim.now,
            covered=covered,
            duplicated=duplicated,
            run_daemons=sum(1 for w in live if w.machine.state == RUN),
            gather_daemons=sum(1 for w in live if w.machine.state == GATHER),
            live_daemons=len(live),
        )

    # ------------------------------------------------------------------
    # analysis

    def series(self, metric):
        """[(time, value)] for one sample attribute."""
        return [(s.time, getattr(s, metric)) for s in self.samples]

    def coverage_dip(self):
        """(start, end, depth) of the first drop below full coverage.

        Returns None when coverage never dipped. ``depth`` is the
        number of simultaneously uncovered VIPs at the worst point.
        """
        if not self.samples:
            return None
        full = max(s.covered for s in self.samples)
        start = end = None
        depth = 0
        for sample in self.samples:
            if sample.covered < full:
                if start is None:
                    start = sample.time
                end = sample.time
                depth = max(depth, full - sample.covered)
            elif start is not None:
                break
        if start is None:
            return None
        return (start, end, depth)
