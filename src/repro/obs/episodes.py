"""Failover episodes: causally stitched spans over the trace log.

One *episode* is the cluster's complete reaction to a disturbance — a
crash, an interface disconnect, a voluntary leave, a partition heal, or
the boot-time formation churn. The extractor scans the structured trace
once, in record order, and stitches the causally related events

    fault → failure suspicion → membership install → Wackamole GATHER
          → reallocation (VIP acquires) → ARP spoofs
          → first client frame answered by the new owner

into one record with per-phase durations. Everything is derived
deterministically from the trace, so episode records are byte-identical
across replays of the same seed (the ``repro check --replay`` gate
asserts exactly that).

Milestones are optional: a graceful leave skips failure detection and
membership reconfiguration entirely (the lightweight group-leave path),
so those phases report ``None`` rather than fabricating a number.
"""

#: membership-gather reasons that open an episode (vs. boot-time joins).
_TRIGGER_REASONS = ("suspected", "foreign daemon", "voluntary leave", "excluded")


def _round(value):
    """Stable rounding for serialised times/durations (ns resolution)."""
    return None if value is None else round(value, 9)


def _source_host(source):
    """Host behind a trace source (``spread@web1``/``wack@web1``/``web1``)."""
    if "@" in source:
        return source.split("@", 1)[1]
    return source


def _victim_of(record):
    """The host a trigger record takes down, or None."""
    if record.category == "fault":
        target = record.details.get("target", "")
        if record.event in ("nic_down", "nic_up"):
            return target.split(".", 1)[0]
        if record.event in ("crash", "recover"):
            return target
        return None
    if record.event == "shutdown":
        return _source_host(record.source)
    return None


class FailoverEpisode:
    """One stitched span; every ``*_time`` is absolute simulated time."""

    __slots__ = (
        "index",
        "trigger_time",
        "trigger_kind",
        "trigger_target",
        "victim",
        "extra_triggers",
        "detection_time",
        "install_time",
        "view",
        "members",
        "view_change_time",
        "run_complete_time",
        "first_acquire_time",
        "last_acquire_time",
        "acquired",
        "first_arp_time",
        "last_arp_time",
        "arp_announcements",
        "client_recovery_time",
        "flow_offered",
        "flow_served",
    )

    def __init__(self, index, trigger):
        self.index = index
        self.trigger_time = trigger.time
        self.trigger_kind = "{}:{}".format(trigger.category, trigger.event)
        self.trigger_target = trigger.details.get("target") or trigger.source
        self.victim = _victim_of(trigger)
        self.extra_triggers = []
        self.detection_time = None
        self.install_time = None
        self.view = None
        self.members = None
        self.view_change_time = None
        self.run_complete_time = None
        self.first_acquire_time = None
        self.last_acquire_time = None
        self.acquired = []
        self.first_arp_time = None
        self.last_arp_time = None
        self.arp_announcements = 0
        self.client_recovery_time = None
        self.flow_offered = 0
        self.flow_served = 0

    # ------------------------------------------------------------------

    @property
    def end_time(self):
        """Time of the last milestone the episode reached."""
        times = [self.trigger_time] + [r.time for r in self.extra_triggers]
        times.extend(
            t
            for t in (
                self.detection_time,
                self.install_time,
                self.view_change_time,
                self.run_complete_time,
                self.last_acquire_time,
                self.last_arp_time,
                self.client_recovery_time,
            )
            if t is not None
        )
        return max(times)

    @property
    def converged(self):
        """The surviving component completed a GATHER (saw a ``run``)."""
        return self.run_complete_time is not None

    @property
    def complete(self):
        """Converged *and* at least one VIP moved (a true fail-over)."""
        return self.converged and self.first_acquire_time is not None

    @property
    def requests_lost(self):
        """Flow-plane requests lost across the episode's impacted ticks."""
        return self.flow_offered - self.flow_served

    @property
    def goodput_pct(self):
        """Served percentage over impacted ticks (None without flow loss).

        Only lossy ticks produce flow records, so this is goodput *while
        the episode was hurting traffic* — 0.0 for a hard blackhole,
        intermediate for degraded modes — not goodput over wall time.
        """
        if not self.flow_offered:
            return None
        return 100.0 * self.flow_served / self.flow_offered

    def _from_victim(self, source):
        return self.victim is not None and _source_host(source) == self.victim

    def absorb(self, record):
        """Fold one trace record into the episode's milestones."""
        category, event = record.category, record.event
        if category == "membership":
            if self._from_victim(record.source):
                return
            if event == "gather" and self.detection_time is None:
                self.detection_time = record.time
            elif event == "install" and self.install_time is None:
                self.install_time = record.time
                self.view = record.details.get("view")
                self.members = list(record.details.get("members", ()))
        elif category == "wackamole":
            if self._from_victim(record.source):
                return
            if event == "view_change" and self.view_change_time is None:
                self.view_change_time = record.time
            elif event == "run":
                self.run_complete_time = record.time
            elif event == "acquire":
                if self.first_acquire_time is None:
                    self.first_acquire_time = record.time
                self.last_acquire_time = record.time
                self.acquired.append((record.details.get("slot"), record.source))
        elif category == "arp" and event == "announce":
            if self._from_victim(record.source):
                return
            if self.first_arp_time is None:
                self.first_arp_time = record.time
            self.last_arp_time = record.time
            self.arp_announcements += 1
        elif category == "workload" and event == "server_change":
            if self.client_recovery_time is None:
                self.client_recovery_time = record.time
        elif category == "flow" and event == "loss":
            # The flow engine emits one record per (VIP, tick) with
            # lost > 0, so these sums cover exactly the impacted ticks.
            self.flow_offered += record.details.get("offered", 0)
            self.flow_served += record.details.get("served", 0)

    # ------------------------------------------------------------------

    def phase_durations(self):
        """Per-phase durations in seconds (None where a phase did not run).

        * ``detection`` — trigger → first survivor suspicion;
        * ``membership`` — suspicion → membership install;
        * ``gather`` — Wackamole VIEW_CHANGE → last member back in RUN;
        * ``reallocation`` — first → last VIP acquisition;
        * ``arp`` — first → last spoofed announcement;
        * ``client_recovery`` — trigger → first reply from the new owner;
        * ``total`` — trigger → last event of the episode.
        """

        def span(start, end):
            if start is None or end is None:
                return None
            return _round(end - start)

        return {
            "detection": span(self.trigger_time, self.detection_time),
            "membership": span(self.detection_time or self.trigger_time, self.install_time),
            "gather": span(self.view_change_time, self.run_complete_time),
            "reallocation": span(self.first_acquire_time, self.last_acquire_time),
            "arp": span(self.first_arp_time, self.last_arp_time),
            "client_recovery": span(self.trigger_time, self.client_recovery_time),
            "total": span(self.trigger_time, self.end_time),
        }

    def to_dict(self):
        """JSON-compatible episode record (stable key order when dumped
        with ``sort_keys=True``; all times rounded for byte stability)."""
        return {
            "index": self.index,
            "trigger": {
                "time": _round(self.trigger_time),
                "kind": self.trigger_kind,
                "target": self.trigger_target,
                "extra": [
                    ["{}:{}".format(r.category, r.event), _round(r.time)]
                    for r in self.extra_triggers
                ],
            },
            "victim": self.victim,
            "view": self.view,
            "members": self.members,
            "complete": self.complete,
            "milestones": {
                "detection": _round(self.detection_time),
                "install": _round(self.install_time),
                "view_change": _round(self.view_change_time),
                "run_complete": _round(self.run_complete_time),
                "first_acquire": _round(self.first_acquire_time),
                "last_acquire": _round(self.last_acquire_time),
                "first_arp": _round(self.first_arp_time),
                "last_arp": _round(self.last_arp_time),
                "client_recovery": _round(self.client_recovery_time),
                "end": _round(self.end_time),
            },
            "phases": self.phase_durations(),
            "acquired": [[slot, host] for slot, host in self.acquired],
            "arp_announcements": self.arp_announcements,
            "requests_lost": self.requests_lost,
            "goodput_pct": _round(self.goodput_pct),
        }

    def __repr__(self):
        return "FailoverEpisode(#{}, {} at {:.4f}, {})".format(
            self.index,
            self.trigger_kind,
            self.trigger_time,
            "complete" if self.complete else "partial",
        )


def _is_trigger(record):
    if record.category == "fault" and record.source == "injector":
        return record.event in ("nic_down", "crash", "partition", "heal")
    if record.category in ("daemon", "wackamole") and record.event == "shutdown":
        return True
    if record.category == "membership" and record.event == "gather":
        reason = record.details.get("reason", "")
        return reason.startswith(_TRIGGER_REASONS)
    return False


def extract_episodes(records):
    """Stitch a trace into a list of :class:`FailoverEpisode`.

    A trigger opens an episode; later triggers extend it while the
    cluster is still converging (cascading faults are one episode) and
    start a new one once the current episode has converged. Records are
    consumed strictly in log order, so the result is a pure function of
    the trace.
    """
    episodes = []
    current = None
    for record in records:
        if _is_trigger(record):
            # A suspicion-driven gather is the *detection* of the open
            # episode, not a new disturbance.
            gather = record.category == "membership"
            if current is None:
                current = FailoverEpisode(len(episodes), record)
                if gather:
                    current.absorb(record)
                continue
            if not gather and current.converged:
                episodes.append(current)
                current = FailoverEpisode(len(episodes), record)
                continue
            if not gather:
                current.extra_triggers.append(record)
        if current is not None:
            current.absorb(record)
    if current is not None:
        episodes.append(current)
    return episodes


def episodes_as_dicts(records):
    """``extract_episodes`` serialised — the replayable artifact form."""
    return [episode.to_dict() for episode in extract_episodes(records)]


def first_complete_episode(episodes, after=None):
    """The first complete episode (optionally triggered at/after ``after``)."""
    for episode in episodes:
        if after is not None and episode.trigger_time < after - 1e-9:
            continue
        if episode.complete:
            return episode
    return None
