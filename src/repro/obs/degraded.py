"""Degraded-mode spans: how long each gray fault was in force.

Fail-stop faults produce :mod:`repro.obs.episodes` — the cluster's
*reaction*. Gray faults additionally have an *exposure window*: the
interval during which a link was bursty, a host slow, a clock skewed, a
direction blocked, or a daemon wedged. This module stitches those
windows out of the injector's trace records, pairing each onset with
its healing record (or, for a wedged daemon, with the supervisor
restart that replaced it).

Like episode extraction this is a pure function of the trace, so the
span lists ride along in check artifacts and must replay
byte-identically (`repro check --replay` compares them).
"""

#: onset event -> the injector event that ends the span.
_HEAL_OF = {
    "asym_partition": "asym_heal",
    "burst_loss_on": "burst_loss_off",
    "slow_host": "unslow_host",
    "clock_skew": "clock_unskew",
    "daemon_wedge": "daemon_unwedge",
}


def _round(value):
    """Stable rounding for serialised times/durations (ns resolution)."""
    return None if value is None else round(value, 9)


class DegradedSpan:
    """One gray-fault exposure window."""

    __slots__ = ("kind", "target", "param", "start", "end", "end_cause")

    def __init__(self, kind, target, param, start):
        self.kind = kind
        self.target = target
        self.param = param
        self.start = start
        self.end = None
        self.end_cause = None

    @property
    def duration(self):
        if self.end is None:
            return None
        return self.end - self.start

    def close(self, time, cause):
        self.end = time
        self.end_cause = cause

    def to_dict(self):
        return {
            "kind": self.kind,
            "target": self.target,
            "param": self.param,
            "start": _round(self.start),
            "end": _round(self.end),
            "duration": _round(self.duration),
            "end_cause": self.end_cause,
        }

    def __repr__(self):
        return "DegradedSpan({}, {}, {:.4f}..{})".format(
            self.kind,
            self.target,
            self.start,
            "open" if self.end is None else "{:.4f}".format(self.end),
        )


def _matches(span, heal_event, target):
    """Does a healing record with this event/target close ``span``?"""
    if _HEAL_OF[span.kind] != heal_event:
        return False
    if span.kind == "asym_partition":
        # Onset target is "<lan>:<deaf hosts>"; the heal names the LAN.
        return span.target.split(":", 1)[0] == target
    return span.target == target


def degraded_spans(records):
    """Stitch the trace into a list of :class:`DegradedSpan`.

    Spans close on their own healing record, on a host crash (for
    host-scoped faults — the reboot resets a slowdown, and a wedged
    daemon dies with its host), or on a supervisor restart of the
    wedged daemon. Spans still open at the end of the trace keep
    ``end=None``.
    """
    spans = []
    open_spans = []
    for record in records:
        if record.category == "fault" and record.source == "injector":
            event = record.event
            target = record.details.get("target")
            if event in _HEAL_OF:
                spans.append(
                    DegradedSpan(
                        event, target, record.details.get("param"), record.time
                    )
                )
                open_spans.append(spans[-1])
                continue
            closed = [
                span for span in open_spans if _matches(span, event, target)
            ]
            if closed:
                for span in closed:
                    span.close(record.time, event)
                open_spans = [s for s in open_spans if s not in closed]
            elif event == "crash":
                # A crash ends every host-scoped degradation (slowdown
                # dies with the software; the wedged daemon dies too).
                dead = [
                    span
                    for span in open_spans
                    if (span.kind == "slow_host" and span.target == target)
                    or (
                        span.kind == "daemon_wedge"
                        # Daemon names are "spread@<host>[-r<n>|-s<n>]".
                        and span.target.split("@", 1)[-1].split("-", 1)[0] == target
                    )
                ]
                for span in dead:
                    span.close(record.time, "crash")
                open_spans = [s for s in open_spans if s not in dead]
        elif record.category == "supervisor" and record.event == "restart_spread":
            old = record.details.get("old")
            replaced = [
                span
                for span in open_spans
                if span.kind == "daemon_wedge" and span.target == "spread@{}".format(old)
            ]
            for span in replaced:
                span.close(record.time, "supervisor_restart")
            open_spans = [s for s in open_spans if s not in replaced]
    return spans


def degraded_spans_as_dicts(records):
    """``degraded_spans`` serialised — the replayable artifact form."""
    return [span.to_dict() for span in degraded_spans(records)]
