"""Protocol state-machine extraction.

Three machine shapes exist in the tree and each gets an extractor:

* **dispatch** — a daemon's exact-type message dispatcher
  (``kind = type(message)`` followed by an ``if kind is X`` / ``elif``
  chain, the hot-path form ``gcs/daemon.py`` and ``gcs/segments.py``
  use). The extractor recovers the message-kind → handler-call arms
  and compares them against the wire classes of the protocol's
  messages module.

* **states** — a handler class whose methods branch on an explicit
  ``self.state`` attribute against module-level string constants
  (``gcs/membership.py``). The extractor recovers the state set and,
  per handler, which states it guards on and which it assigns.

* **declared** — an explicit transition table (``core/state.py``):
  the ``STATES`` tuple and ``TRANSITIONS`` frozenset literals are
  parsed directly, so the artifact mirrors Figure 2 of the paper.

``extract_machines`` returns rich :class:`ExtractedMachine` objects
(AST nodes attached, for the PROTO002/PROTO003 rules);
``render_state_machines`` reduces them to the deterministic JSON
artifact behind ``repro lint --state-machines`` (format
``repro-state-machines/1``, committed as ``docs/state-machines.json``).
Everything is emitted in sorted order so two runs are byte-identical.
"""

import ast

from repro.analysis.suppress import is_not_wire

STATE_MACHINES_FORMAT = "repro-state-machines/1"


class StateMachineSpec:
    """Where one protocol machine lives and how to read it."""

    __slots__ = (
        "name",
        "kind",
        "module",
        "class_name",
        "dispatcher",
        "messages",
        "state_attr",
        "states_name",
        "transitions_name",
    )

    def __init__(
        self,
        name,
        kind,
        module,
        class_name,
        dispatcher=None,
        messages=None,
        state_attr="state",
        states_name="STATES",
        transitions_name="TRANSITIONS",
    ):
        if kind not in ("dispatch", "states", "declared"):
            raise ValueError("unknown machine kind {!r}".format(kind))
        self.name = name
        self.kind = kind
        self.module = module
        self.class_name = class_name
        self.dispatcher = dispatcher
        self.messages = messages
        self.state_attr = state_attr
        self.states_name = states_name
        self.transitions_name = transitions_name


#: The machines of this tree, in artifact order.
DEFAULT_STATE_MACHINES = (
    StateMachineSpec(
        "core.wackamole",
        "declared",
        "repro/core/state.py",
        "StateMachine",
    ),
    StateMachineSpec(
        "gcs.daemon",
        "dispatch",
        "repro/gcs/daemon.py",
        "SpreadDaemon",
        dispatcher="_on_datagram",
        messages="repro/gcs/messages.py",
    ),
    StateMachineSpec(
        "gcs.membership",
        "states",
        "repro/gcs/membership.py",
        "MembershipEngine",
    ),
    StateMachineSpec(
        "gcs.segments",
        "dispatch",
        "repro/gcs/segments.py",
        "SegmentNode",
        dispatcher="_on_datagram",
        messages="repro/gcs/segments.py",
    ),
)


class ExtractedMachine:
    """One extracted machine: the JSON-able ``data`` plus AST anchors."""

    __slots__ = (
        "spec",
        "module",
        "messages_module",
        "class_node",
        "dispatcher_node",
        "handler_nodes",
        "state_constants",
        "data",
    )

    def __init__(self, spec, module):
        self.spec = spec
        self.module = module
        self.messages_module = None
        self.class_node = None
        self.dispatcher_node = None
        # method name -> FunctionDef, for the rules to re-walk
        self.handler_nodes = {}
        # constant name -> state value (module-level string constants)
        self.state_constants = {}
        self.data = {}


def extract_machines(project, config):
    """Extract every configured machine present in the lint run.

    Machines whose module is not part of the run are skipped (a
    partial-tree lint cannot see them); order follows the config.
    """
    machines = []
    for spec in config.state_machines:
        module = project.find(spec.module)
        if module is None:
            continue
        extracted = _extract_one(spec, module, project)
        if extracted is not None:
            machines.append(extracted)
    return machines


def render_state_machines(project, config):
    """The deterministic ``--state-machines`` artifact."""
    return {
        "format": STATE_MACHINES_FORMAT,
        "machines": [m.data for m in extract_machines(project, config)],
    }


# ----------------------------------------------------------------------
# per-kind extraction


def _extract_one(spec, module, project):
    class_node = _top_level_class(module.tree, spec.class_name)
    if class_node is None:
        return None
    extracted = ExtractedMachine(spec, module)
    extracted.class_node = class_node
    if spec.kind == "dispatch":
        _extract_dispatch(extracted, project)
    elif spec.kind == "states":
        _extract_states(extracted)
    else:
        _extract_declared(extracted)
    return extracted


def _extract_dispatch(extracted, project):
    spec = extracted.spec
    class_node = extracted.class_node
    dispatcher = None
    for item in class_node.body:
        if isinstance(item, ast.FunctionDef) and item.name == spec.dispatcher:
            dispatcher = item
            break
    arms = {}
    has_default = False
    if dispatcher is not None:
        extracted.dispatcher_node = dispatcher
        param = _message_param(dispatcher)
        aliases = _type_aliases(dispatcher, param)
        arms, has_default = _dispatch_arms(dispatcher.body, param, aliases)
    messages_module = project.find(spec.messages) if spec.messages else None
    extracted.messages_module = messages_module
    kinds = []
    if messages_module is not None:
        kinds = sorted(c.name for c in _wire_classes(messages_module))
    extracted.data = {
        "name": spec.name,
        "kind": "dispatch",
        "module": extracted.module.path,
        "class": spec.class_name,
        "dispatcher": spec.dispatcher,
        "messages_module": messages_module.path if messages_module else None,
        "message_kinds": kinds,
        "arms": {name: arms[name] for name in sorted(arms)},
        "has_default_arm": has_default,
        "unhandled": sorted(set(kinds) - set(arms)) if not has_default else [],
    }


def _message_param(dispatcher):
    """The message parameter: first positional argument after self."""
    names = [arg.arg for arg in dispatcher.args.args if arg.arg != "self"]
    return names[0] if names else None


def _type_aliases(dispatcher, param):
    """Locals bound to ``type(<param>)`` — the hoisted dispatch key."""
    aliases = set()
    for node in ast.walk(dispatcher):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "type"
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Name)
            and value.args[0].id == param
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)
    return aliases


def _dispatch_arms(body, param, aliases):
    """``{message class name: sorted handler-call targets}`` plus else-arm."""
    arms = {}
    has_default = False
    for statement in body:
        if not isinstance(statement, ast.If):
            continue
        node = statement
        chain_matched = False
        while True:
            name = _arm_class_name(node.test, param, aliases)
            if name is not None:
                chain_matched = True
                arms.setdefault(name, _handler_calls(node.body))
            orelse = node.orelse
            if len(orelse) == 1 and isinstance(orelse[0], ast.If):
                node = orelse[0]
                continue
            if orelse and chain_matched:
                has_default = True
            break
    return arms, has_default


def _arm_class_name(test, param, aliases):
    """The class a dispatch test selects, or None.

    Recognized: ``<alias> is Cls`` (alias hoisted via ``type(param)``),
    ``type(param) is Cls``, and ``isinstance(param, Cls)``.
    """
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if not isinstance(test.ops[0], ast.Is):
            return None
        left, right = test.left, test.comparators[0]
        if not isinstance(right, ast.Name):
            return None
        if isinstance(left, ast.Name) and left.id in aliases:
            return right.id
        if (
            isinstance(left, ast.Call)
            and isinstance(left.func, ast.Name)
            and left.func.id == "type"
            and len(left.args) == 1
            and isinstance(left.args[0], ast.Name)
            and left.args[0].id == param
        ):
            return right.id
    if (
        isinstance(test, ast.Call)
        and isinstance(test.func, ast.Name)
        and test.func.id == "isinstance"
        and len(test.args) == 2
        and isinstance(test.args[0], ast.Name)
        and test.args[0].id == param
        and isinstance(test.args[1], ast.Name)
    ):
        return test.args[1].id
    return None


def _handler_calls(statements):
    """Sorted dotted targets of the calls an arm makes (``self.…`` only)."""
    targets = set()
    for statement in statements:
        for node in ast.walk(statement):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is not None and dotted.startswith("self."):
                    targets.add(dotted)
    return sorted(targets)


def _dotted(node):
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        if base is None:
            return None
        return "{}.{}".format(base, node.attr)
    return None


def _wire_classes(module):
    """Plain top-level classes (no bases) not marked ``# repro: not-wire``."""
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef) or node.bases or node.keywords:
            continue
        if is_not_wire(module.line_text(node.lineno)):
            continue
        yield node


# ----------------------------------------------------------------------


def _extract_states(extracted):
    spec = extracted.spec
    module = extracted.module
    constants = {}
    for statement in module.tree.body:
        if isinstance(statement, ast.Assign) and isinstance(statement.value, ast.Constant):
            if isinstance(statement.value.value, str):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        constants[target.id] = statement.value.value
    handlers = {}
    used_states = set()
    for item in extracted.class_node.body:
        if not isinstance(item, ast.FunctionDef):
            continue
        guards, assigns = _state_usage(item, spec.state_attr, constants)
        if not guards and not assigns:
            continue
        extracted.handler_nodes[item.name] = item
        used_states.update(guards)
        used_states.update(assigns)
        handlers[item.name] = {"guards": sorted(guards), "assigns": sorted(assigns)}
    extracted.state_constants = {
        name: value for name, value in constants.items() if value in used_states
    }
    extracted.data = {
        "name": spec.name,
        "kind": "states",
        "module": module.path,
        "class": spec.class_name,
        "state_attr": spec.state_attr,
        "states": sorted(used_states),
        "handlers": {name: handlers[name] for name in sorted(handlers)},
    }


def _state_usage(func_node, state_attr, constants):
    """State values a method compares against and assigns, as two sets."""
    guards = set()
    assigns = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            if any(_is_self_attr(op, state_attr) for op in operands):
                for operand in operands:
                    guards.update(_state_values(operand, constants))
        elif isinstance(node, ast.Assign):
            if any(_is_self_attr(t, state_attr) for t in node.targets):
                assigns.update(_state_values(node.value, constants))
    return guards, assigns


def _is_self_attr(node, attr):
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _state_values(node, constants):
    """State string values an expression can denote."""
    if isinstance(node, ast.Name) and node.id in constants:
        return {constants[node.id]}
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values = set()
        for element in node.elts:
            values.update(_state_values(element, constants))
        return values
    return set()


def state_assign_targets(func_node, state_attr, constants):
    """``(node, values)`` for every ``self.<state_attr> = …`` in a method.

    ``values`` is empty when the assigned expression is not a
    recognizable state constant — the PROTO003 trigger.
    """
    out = []
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign) and any(
            _is_self_attr(t, state_attr) for t in node.targets
        ):
            out.append((node, _state_values(node.value, constants)))
    return out


def eq_chain_shape(func_node, state_attr, constants):
    """Shape of a handler whose whole body is a ``self.state ==`` chain.

    Returns ``(arms, covered, has_else)`` when the method body is
    exactly one if/elif chain of pure equality tests on the state
    attribute, else None. Used by PROTO002: a multi-arm chain with no
    else and incomplete coverage silently drops the missing states.
    """
    body = [s for s in func_node.body if not _is_docstring(s)]
    if len(body) != 1 or not isinstance(body[0], ast.If):
        return None
    arms = 0
    covered = set()
    node = body[0]
    while True:
        values = _pure_eq_values(node.test, state_attr, constants)
        if values is None:
            return None
        arms += 1
        covered.update(values)
        orelse = node.orelse
        if len(orelse) == 1 and isinstance(orelse[0], ast.If):
            node = orelse[0]
            continue
        return arms, covered, bool(orelse)


def _pure_eq_values(test, state_attr, constants):
    """Values of a ``self.state == CONST`` / ``self.state in (…)`` test."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    if not isinstance(test.ops[0], (ast.Eq, ast.In)):
        return None
    if not _is_self_attr(test.left, state_attr):
        return None
    values = _state_values(test.comparators[0], constants)
    return values or None


def _is_docstring(statement):
    return (
        isinstance(statement, ast.Expr)
        and isinstance(statement.value, ast.Constant)
        and isinstance(statement.value.value, str)
    )


# ----------------------------------------------------------------------


def _extract_declared(extracted):
    spec = extracted.spec
    module = extracted.module
    constants = {}
    states_literal = None
    transitions_literal = None
    for statement in module.tree.body:
        if not isinstance(statement, ast.Assign):
            continue
        for target in statement.targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(statement.value, ast.Constant) and isinstance(
                statement.value.value, str
            ):
                constants[target.id] = statement.value.value
            if target.id == spec.states_name:
                states_literal = statement.value
            elif target.id == spec.transitions_name:
                transitions_literal = statement.value
    states = sorted(_state_values(states_literal, constants)) if states_literal else []
    transitions = []
    for triple in _transition_triples(transitions_literal):
        resolved = [_one_state_value(part, constants) for part in triple.elts]
        if all(value is not None for value in resolved):
            transitions.append(resolved)
    extracted.state_constants = constants
    extracted.data = {
        "name": spec.name,
        "kind": "declared",
        "module": module.path,
        "class": spec.class_name,
        "states": states,
        "transitions": sorted(transitions),
    }


def _transition_triples(node):
    """The 3-tuples inside ``frozenset({...})`` / set / tuple literals."""
    if node is None:
        return
    container = node
    if isinstance(container, ast.Call) and container.args:
        container = container.args[0]
    if isinstance(container, (ast.Set, ast.Tuple, ast.List)):
        for element in container.elts:
            if isinstance(element, ast.Tuple) and len(element.elts) == 3:
                yield element


def _one_state_value(node, constants):
    values = _state_values(node, constants)
    if len(values) == 1:
        return next(iter(values))
    return None


def _top_level_class(tree, name):
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None
