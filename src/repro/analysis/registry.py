"""Rule registry: rules self-register at import time.

A rule is a class with ``code``/``name``/``description`` attributes and
either hook:

* ``check_module(module, config)`` — yielded once per linted file;
* ``check_project(project, config)`` — yielded once per run, for
  cross-file invariants (e.g. handler exhaustiveness).
"""

_RULES = {}


class Rule:
    """Base class; subclasses override one of the check hooks.

    ``rationale`` and the ``example_bad``/``example_good`` pair feed
    ``repro lint --explain CODE``; keep the examples minimal (a few
    lines each) and make the good one the smallest fix of the bad one.
    """

    code = ""
    name = ""
    description = ""
    rationale = ""
    example_bad = ""
    example_good = ""

    def check_module(self, module, config):
        return iter(())

    def check_project(self, project, config):
        return iter(())


def register(rule_class):
    """Class decorator adding the rule to the registry."""
    code = rule_class.code.lower()
    if not code:
        raise ValueError("rule {} has no code".format(rule_class.__name__))
    if code in _RULES:
        raise ValueError("duplicate rule code {}".format(rule_class.code))
    _RULES[code] = rule_class()
    return rule_class


def all_rules():
    """Every registered rule, sorted by code."""
    _ensure_loaded()
    return [_RULES[code] for code in sorted(_RULES)]


def get_rule(code):
    """Look one rule up by (case-insensitive) code."""
    _ensure_loaded()
    return _RULES[code.lower()]


def _ensure_loaded():
    # Importing the rules package triggers every @register decorator.
    import repro.analysis.rules  # noqa: F401
