"""Light-weight, purely syntactic set/dict type inference for DET003.

Tracks only what is locally evident — literals, ``set()``/``dict()``
constructors, set operators, assignments to locals and ``self.``
attributes inside the same class — and answers "is this expression
set-like / dict-like?". Anything it cannot prove is left alone, so the
rule errs toward silence on unknown types rather than noise.
"""

import ast

SET_KIND = "set"
DICT_KIND = "dict"

_SET_CALLS = {"set", "frozenset"}
_DICT_CALLS = {"dict"}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def class_attr_kinds(class_node):
    """Map ``self.<attr>`` -> kind, from every assignment in the class."""
    kinds = {}
    for method in ast.walk(class_node):
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(method):
            targets = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            kind = literal_kind(value)
            if kind is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    # A set-like assignment anywhere marks the attribute;
                    # prefer SET over DICT when both ever appear.
                    previous = kinds.get(target.attr)
                    if previous != SET_KIND:
                        kinds[target.attr] = kind
    return kinds


def local_kinds(func_node):
    """Map local variable name -> kind, from assignments in a function."""
    kinds = {}
    for node in ast.walk(func_node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func_node:
            continue
        targets = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        kind = literal_kind(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if kind is not None:
                    if kinds.get(target.id) != SET_KIND:
                        kinds[target.id] = kind
                elif target.id in kinds:
                    # Rebound to something unknown: stop claiming a kind.
                    del kinds[target.id]
    return kinds


def literal_kind(node):
    """Kind evident from the expression's own syntax, else None."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return SET_KIND
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return DICT_KIND
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _SET_CALLS:
                return SET_KIND
            if func.id in _DICT_CALLS:
                return DICT_KIND
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_METHODS and literal_kind(func.value) == SET_KIND:
                return SET_KIND
            if func.attr == "fromkeys" and isinstance(func.value, ast.Name):
                if func.value.id == "dict":
                    return DICT_KIND
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        if literal_kind(node.left) == SET_KIND or literal_kind(node.right) == SET_KIND:
            return SET_KIND
    return None


class KindResolver:
    """Resolve expression kinds inside one function, with class context."""

    def __init__(self, func_node, attr_kinds=None):
        self.locals = local_kinds(func_node)
        self.attrs = attr_kinds or {}

    def kind_of(self, node):
        """SET_KIND / DICT_KIND / None for an arbitrary expression."""
        direct = literal_kind(node)
        if direct is not None:
            return direct
        if isinstance(node, ast.Name):
            return self.locals.get(node.id)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return self.attrs.get(node.attr)
            # x.union(...) etc. on a known local/attr
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _SET_METHODS:
                if self.kind_of(node.func.value) == SET_KIND:
                    return SET_KIND
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            if (
                self.kind_of(node.left) == SET_KIND
                or self.kind_of(node.right) == SET_KIND
            ):
                return SET_KIND
        return None
