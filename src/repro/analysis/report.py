"""Text and JSON reporters.

Both formats are deterministic: findings arrive pre-sorted from the
engine, JSON uses sorted keys, and neither embeds timestamps or paths
that vary between runs — two runs over the same tree are
byte-identical (asserted by tests/analysis).
"""

import json


def summarize(result):
    """Per-rule counts and totals as a plain dict."""
    per_rule = {}
    for finding in result.findings:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    return {
        "files": len(result.files),
        "findings": len(result.findings),
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "parse_errors": len(result.parse_errors),
        "by_rule": per_rule,
    }


def render_json(result):
    """The machine-readable report (one trailing newline, sorted keys)."""
    payload = {
        "format": "repro-lint/1",
        "summary": summarize(result),
        "findings": [f.to_dict() for f in result.findings],
        "parse_errors": [f.to_dict() for f in result.parse_errors],
        "rules": sorted(result.rules),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_text(result):
    """The human-readable report."""
    lines = []
    for finding in result.parse_errors + result.findings:
        lines.append(
            "{}:{}:{}: {} {}".format(
                finding.path,
                finding.line,
                finding.col + 1,
                finding.rule,
                finding.message,
            )
        )
        if finding.snippet.strip():
            lines.append("    {}".format(finding.snippet.strip()))
    summary = summarize(result)
    verdict = "clean" if not (result.findings or result.parse_errors) else "FAILED"
    lines.append(
        "repro lint: {} file(s), {} finding(s), {} suppressed, "
        "{} baselined — {}".format(
            summary["files"],
            summary["findings"] + summary["parse_errors"],
            summary["suppressed"],
            summary["baselined"],
            verdict,
        )
    )
    return "\n".join(lines)
