"""The unit of linter output: one finding at one source location."""

import hashlib


class Finding:
    """One rule violation, locatable and stably fingerprintable."""

    __slots__ = ("rule", "path", "line", "col", "message", "snippet")

    def __init__(self, rule, path, line, col, message, snippet=""):
        self.rule = rule
        self.path = path
        self.line = int(line)
        self.col = int(col)
        self.message = message
        self.snippet = snippet

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def __repr__(self):
        return "Finding({} {}:{}:{})".format(self.rule, self.path, self.line, self.col)


def fingerprint(finding, occurrence=0):
    """Stable identity for baseline matching.

    Hashes the rule, the path, the *text* of the offending line, and an
    occurrence index (the Nth identical line flagged by the same rule in
    the same file) — but not the line number, so unrelated edits above a
    baselined finding do not invalidate the baseline.
    """
    payload = "{}|{}|{}|{}".format(
        finding.rule, finding.path, finding.snippet.strip(), occurrence
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def assign_fingerprints(findings):
    """Return ``[(finding, fingerprint)]`` with occurrence disambiguation."""
    seen = {}
    out = []
    for finding in sorted(findings, key=Finding.sort_key):
        base = (finding.rule, finding.path, finding.snippet.strip())
        occurrence = seen.get(base, 0)
        seen[base] = occurrence + 1
        out.append((finding, fingerprint(finding, occurrence)))
    return out
