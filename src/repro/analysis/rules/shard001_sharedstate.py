"""SHARD001 — mutable state shared across simulation contexts.

ROADMAP item 5 splits the kernel across cores: independent LAN
segments / cluster shards run in separate workers and their event
streams merge deterministically. Any module-level or class-level
mutable object that more than one component mutates is exactly the
state that cannot survive that split — two shards each advance their
own copy, and the merge is no longer a pure function of the event
streams. The per-process MAC allocator this rule originally caught
(``net/nic.py``) made two fresh ``Simulation`` objects in one process
allocate *different* MAC sequences than two in separate processes.

Three triggers, all within ``config.shard_scope``:

* a ``global`` rebind inside a function — per-process state by
  construction (the campaign worker pool's deliberate use carries a
  line-scoped suppression);
* an in-place mutation of a module-level container reachable (via the
  call graph) from methods of **two or more** distinct classes;
* an in-place mutation through an explicit ``ClassName.attr`` —
  cross-instance by construction.
"""

import ast

from repro.analysis.dataflow import MUTATING_METHODS
from repro.analysis.engine import path_in_dir, path_matches
from repro.analysis.registry import Rule, register


@register
class SharedShardStateRule(Rule):
    code = "SHARD001"
    name = "shared-shard-state"
    description = (
        "module/class-level mutable state mutated from more than one "
        "simulation context; breaks deterministic shard merge"
    )
    rationale = (
        "The multi-core kernel (ROADMAP item 5) runs cluster shards in "
        "separate workers and merges their event streams. State shared "
        "through a module global or class attribute diverges between "
        "workers: each process mutates its own copy, so replay is no "
        "longer a pure function of (seed, schedule). State must hang "
        "off the Simulation (one owner per shard) or be immutable."
    )
    example_bad = (
        "_next_id = [0]\n"
        "\n"
        "def allocate_id():\n"
        "    _next_id[0] += 1   # shared across every Simulation in-process\n"
        "    return _next_id[0]\n"
    )
    example_good = (
        "class Simulation:\n"
        "    def __init__(self):\n"
        "        self._next_id = 0   # one counter per simulation\n"
        "\n"
        "    def allocate_id(self):\n"
        "        self._next_id += 1\n"
        "        return self._next_id\n"
    )

    def check_project(self, project, config):
        in_scope = [
            module
            for module in project.modules
            if _in_shard_scope(module.path, config)
        ]
        if not in_scope:
            return
        dataflow = project.dataflow()
        callgraph = project.callgraph()
        symbols = project.symbols()
        for module in in_scope:
            # (a) global rebinds: per-process state by construction.
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Global):
                    yield module.finding(
                        self.code,
                        node,
                        "`global {}` rebind: per-process state that diverges "
                        "across simulation shards; own it from the Simulation "
                        "instead".format(", ".join(node.names)),
                    )

            # (b) module-global containers mutated from >= 2 classes.
            module_info = symbols.modules.get(module.path)
            if module_info is None:
                continue
            for global_name in sorted(dataflow.mutable_globals.get(module.path, ())):
                mutators = dataflow.global_mutators(module.path, global_name)
                if not mutators:
                    continue
                contexts = set()
                for mutator in mutators:
                    contexts.update(callgraph.reaching_classes(mutator))
                if len(contexts) < 2:
                    continue
                for mutator in mutators:
                    func = callgraph._function_by_qualname(mutator)
                    if func is None:
                        continue
                    for site in _mutation_sites(func.node, global_name):
                        yield module.finding(
                            self.code,
                            site,
                            "module global `{}` mutated here is reachable from "
                            "{} component classes ({}); shard merge cannot "
                            "replay shared state".format(
                                global_name,
                                len(contexts),
                                ", ".join(sorted(contexts)),
                            ),
                        )

            # (c) explicit ClassName.attr mutation: cross-instance state.
            for func_node in _module_functions(module.tree):
                for site, class_name, attr in _class_attr_mutations(
                    func_node, module_info, symbols
                ):
                    yield module.finding(
                        self.code,
                        site,
                        "class attribute `{}.{}` mutated in place: shared by "
                        "every instance across shard boundaries".format(
                            class_name, attr
                        ),
                    )


def _in_shard_scope(path, config):
    if config.edge_reason(path) is not None:
        # Declared edge infrastructure (config.sim_edge) — e.g. the
        # sharded-kernel worker pool, whose per-process state is the
        # mechanism, not a determinism leak.
        return False
    for prefix in config.shard_scope:
        if path_in_dir(path, prefix) or path_matches(path, prefix):
            return True
    return False


def _module_functions(tree):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _mutation_sites(func_node, name):
    """Nodes inside one function that mutate the named binding in place."""
    for node in ast.walk(func_node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == name
                ):
                    yield node
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            yield node


def _class_attr_mutations(func_node, module_info, symbols):
    """(site, class name, attr) for in-place writes through ClassName.attr."""
    from repro.analysis.callgraph import ClassInfo

    for node in ast.walk(func_node):
        base = None
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    base = target.value
                elif isinstance(target, ast.Attribute):
                    base = target
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            base = node.func.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id != "self"
        ):
            resolved = symbols.resolve_name(module_info, base.value.id)
            if isinstance(resolved, ClassInfo) and base.attr in resolved.class_attrs:
                yield node, resolved.name, base.attr
