"""PROTO002 — state-machine completeness.

Consumes the extracted machines (:mod:`repro.analysis.statemachine`)
and checks that every reachable (state, input) pair has *decided*
behaviour:

* **dispatch** machines: every wire-message class of the protocol's
  messages module needs an arm in the dispatch chain (or the chain
  needs a default ``else`` arm). A kind with no arm is dropped by
  omission — the silent-drop membership bug PROTO001 guards at the
  protocol level, here enforced per dispatcher.
* **states** machines: a handler whose whole body is a multi-arm
  ``self.state ==`` chain with no ``else`` and incomplete coverage
  silently ignores the missing states. (A single-arm guard is the
  idiomatic "act only in state X, else drop" and stays legal, as does
  any handler with an unguarded default path.)
* **declared** machines: every transition endpoint must be a declared
  state.
"""

from repro.analysis.registry import Rule, register
from repro.analysis.statemachine import eq_chain_shape


@register
class StateMachineCompletenessRule(Rule):
    code = "PROTO002"
    name = "state-machine-completeness"
    description = (
        "a protocol state machine leaves a (state, message) pair "
        "undecided: unhandled wire kind, partial state chain, or "
        "transition to an undeclared state"
    )
    rationale = (
        "Convergence from arbitrary state (ROADMAP item 3) requires "
        "every handler to decide every input in every state — handle "
        "it or drop it explicitly. A dispatch chain missing a kind, or "
        "a multi-arm state chain missing a state, is an *accidental* "
        "drop: the protocol's behaviour there is whatever the code "
        "happens not to do, which corruption faults will find."
    )
    example_bad = (
        "def on_msg(self, m):\n"
        "    if self.state == IDLE:\n"
        "        self.begin(m)\n"
        "    elif self.state == BUSY:\n"
        "        self.queue(m)\n"
        "    # SYNCING state silently ignored\n"
    )
    example_good = (
        "def on_msg(self, m):\n"
        "    if self.state == IDLE:\n"
        "        self.begin(m)\n"
        "    elif self.state == BUSY:\n"
        "        self.queue(m)\n"
        "    else:   # SYNCING (and any future state): explicit drop\n"
        "        self.trace(\"drop\", m)\n"
    )

    def check_project(self, project, config):
        for machine in project.machines():
            data = machine.data
            module = machine.module
            if data["kind"] == "dispatch":
                if machine.dispatcher_node is None:
                    yield module.finding(
                        self.code,
                        machine.class_node,
                        "machine `{}`: dispatcher method `{}` not found on "
                        "class {}".format(
                            data["name"], machine.spec.dispatcher, data["class"]
                        ),
                    )
                    continue
                for kind in data["unhandled"]:
                    yield module.finding(
                        self.code,
                        machine.dispatcher_node,
                        "machine `{}`: wire message {} has no dispatch arm in "
                        "{} and no default arm drops it".format(
                            data["name"], kind, machine.spec.dispatcher
                        ),
                    )
            elif data["kind"] == "states":
                declared = set(data["states"])
                for name in sorted(machine.handler_nodes):
                    node = machine.handler_nodes[name]
                    shape = eq_chain_shape(
                        node, machine.spec.state_attr, machine.state_constants
                    )
                    if shape is None:
                        continue
                    arms, covered, has_else = shape
                    missing = declared - covered
                    if arms >= 2 and not has_else and missing:
                        yield module.finding(
                            self.code,
                            node,
                            "machine `{}`: handler {} enumerates states but "
                            "silently ignores {}; add an arm or an explicit "
                            "else-drop".format(
                                data["name"], name, ", ".join(sorted(missing))
                            ),
                        )
            elif data["kind"] == "declared":
                declared = set(data["states"])
                for from_state, event, to_state in data["transitions"]:
                    undeclared = sorted(
                        {from_state, to_state} - declared
                    )
                    if undeclared:
                        yield module.finding(
                            self.code,
                            machine.class_node,
                            "machine `{}`: transition ({}, {}, {}) references "
                            "undeclared state(s) {}".format(
                                data["name"],
                                from_state,
                                event,
                                to_state,
                                ", ".join(undeclared),
                            ),
                        )
