"""DET003 — unordered iteration whose order escapes.

Iterating a ``set``/``frozenset`` (order depends on the interpreter's
hash randomisation and insertion history) or a dict's ``.values()`` /
``.items()`` (order depends on key insertion, which in protocol code is
usually message-arrival order) is fine while the consumer is
order-insensitive — but the moment that order escapes into a list, a
trace, a wire message, or a protocol decision, replay is no longer a
pure function of the fault schedule. The fix is always the same:
iterate ``sorted(...)`` over a canonical key.

What the rule flags:

* set-like expressions in ordered conversions — ``list(s)``,
  ``tuple(s)``, ``enumerate(s)``, ``reversed(s)``, ``sep.join(s)``,
  list comprehensions;
* ``for`` statements over set-like expressions or dict
  ``.values()``/``.items()`` whose body *accumulates in order*
  (``.append``/``.extend``/``.insert``/``.update``/``.setdefault``,
  ``yield``, or a trace/broadcast/send-style call);
* dict ``.values()`` in ordered conversions.

Deliberately *not* flagged: plain dict (key) iteration and ``.items()``
comprehensions — the codebase's canonical-key dicts (slot tables built
from configuration order) are deterministic by construction, and
flagging them would bury the real arrival-ordered offenders.
"""

import ast

from repro.analysis.registry import Rule, register
from repro.analysis.settypes import DICT_KIND, SET_KIND, KindResolver, class_attr_kinds

_ORDERED_CONVERSIONS = {"list", "tuple", "enumerate", "reversed", "iter", "next"}
_ORDER_INSENSITIVE = {
    "sorted",
    "min",
    "max",
    "sum",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
    "dict",
    "zip",
}
_ACCUMULATORS = {"append", "extend", "insert", "update", "setdefault"}
_EMITTERS = {
    "trace",
    "broadcast",
    "unicast",
    "multicast",
    "send",
    "send_udp",
    "submit",
    "deliver",
    "announce",
}


@register
class UnorderedIterationRule(Rule):
    code = "DET003"
    name = "unordered-iteration"
    description = (
        "iteration over a set / dict values in a context where the "
        "(nondeterministic or arrival-dependent) order escapes; wrap the "
        "iterable in sorted(...)"
    )
    rationale = (
        "Set iteration order depends on the interpreter's hash seed and "
        "insertion history; dict order depends on arrival order. When "
        "such an order escapes — into a message, a trace line, an event "
        "queue — two runs of the same seed can diverge. Sorting before "
        "iterating pins the order to the element values themselves."
    )
    example_bad = (
        "for host in self.suspects:        # set order escapes\n"
        "    self.send_udp(host, Probe())\n"
    )
    example_good = (
        "for host in sorted(self.suspects):\n"
        "    self.send_udp(host, Probe())\n"
    )

    def check_module(self, module, config):
        parents = {}
        for parent in ast.walk(module.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for func, attr_kinds in _scopes(module.tree):
            resolver = KindResolver(func, attr_kinds)
            for finding in self._check_scope(module, func, resolver, parents):
                yield finding

    # ------------------------------------------------------------------

    def _check_scope(self, module, scope, resolver, parents):
        for node in _scope_nodes(scope):
            if isinstance(node, ast.For):
                kind = self._iterable_kind(node.iter, resolver, statement=True)
                if kind is not None and _body_escapes(node):
                    yield module.finding(
                        self.code,
                        node,
                        "for-loop over {} feeds an ordered accumulation; "
                        "iterate sorted(...) instead".format(kind),
                    )
            elif isinstance(node, ast.Call):
                for finding in self._check_call(module, node, resolver):
                    yield finding
            elif isinstance(node, ast.ListComp):
                for generator in node.generators:
                    kind = self._iterable_kind(generator.iter, resolver)
                    if kind is not None:
                        yield module.finding(
                            self.code,
                            generator.iter,
                            "list comprehension over {} captures an "
                            "unstable order; iterate sorted(...) instead".format(kind),
                        )
            elif isinstance(node, ast.GeneratorExp):
                consumer = _consumer_name(node, parents)
                if consumer is None or consumer in _ORDER_INSENSITIVE:
                    continue
                for generator in node.generators:
                    kind = self._iterable_kind(generator.iter, resolver)
                    if kind is not None:
                        yield module.finding(
                            self.code,
                            generator.iter,
                            "generator over {} flows into {}() which keeps "
                            "its order; iterate sorted(...) instead".format(
                                kind, consumer
                            ),
                        )

    def _check_call(self, module, node, resolver):
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in _ORDERED_CONVERSIONS:
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            name = "join"
        if name is None or not node.args:
            return
        kind = self._iterable_kind(node.args[0], resolver)
        if kind is not None:
            yield module.finding(
                self.code,
                node,
                "{}() over {} captures an unstable order; wrap the "
                "iterable in sorted(...)".format(name, kind),
            )

    def _iterable_kind(self, iterable, resolver, statement=False):
        """'a set'/'dict values'/'dict items' when order is unstable.

        ``.items()`` only counts in ``for`` statements (``statement``):
        items-comprehensions over canonical-key dicts (the slot-table
        idiom) are deterministic by construction, while an ``.items()``
        loop that accumulates is usually walking an arrival-ordered map.
        """
        kind = resolver.kind_of(iterable)
        if kind == SET_KIND:
            return "a set"
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr in ("values", "items")
            and not iterable.args
        ):
            if iterable.func.attr == "items" and not statement:
                return None
            base_kind = resolver.kind_of(iterable.func.value)
            if base_kind == DICT_KIND:
                return "dict {}".format(iterable.func.attr)
        return None


def _scopes(tree):
    """Yield (scope node, attribute kinds) for module, functions, methods."""
    yield tree, {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            attr_kinds = class_attr_kinds(node)
            for item in ast.walk(node):
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, attr_kinds
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _inside_class(tree, node):
                yield node, {}


def _inside_class(tree, func):
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for item in ast.walk(node):
                if item is func:
                    return True
    return False


def _scope_nodes(scope):
    """Walk a scope without descending into nested functions/classes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _body_escapes(for_node):
    """True when the loop body accumulates or emits in iteration order."""
    for stmt in for_node.body + for_node.orelse:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _ACCUMULATORS or node.func.attr in _EMITTERS:
                    return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _EMITTERS:
                    return True
    return False


def _consumer_name(genexp, parents):
    """The callable a bare generator expression is passed to, if any."""
    parent = parents.get(genexp)
    if not isinstance(parent, ast.Call):
        return None
    func = parent.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
