"""Rule modules; importing this package populates the registry."""

from repro.analysis.rules import (  # noqa: F401
    det001_wallclock,
    det002_random,
    det003_unordered,
    det004_idhash,
    det005_rngflow,
    det006_mutables,
    proto001_dispatch,
    proto002_completeness,
    proto003_transitions,
    shard001_sharedstate,
    sim001_substrate,
)
