"""Rule modules; importing this package populates the registry."""

from repro.analysis.rules import (  # noqa: F401
    det001_wallclock,
    det002_random,
    det003_unordered,
    det004_idhash,
    proto001_dispatch,
    sim001_substrate,
)
