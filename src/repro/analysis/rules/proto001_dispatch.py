"""PROTO001 — message-handler exhaustiveness.

Every wire-message class defined in a protocol's messages module must
have a dispatch arm — an ``isinstance`` check, an exact-type identity
check (``type(msg) is Cls`` / ``kind is Cls``, the hot-path form the
daemon uses), or a ``match``/``case`` pattern — in at least one of its
dispatcher modules. A message type nobody dispatches is either dead
protocol surface or — worse — a message silently dropped on the floor,
the classic unmodeled-ordering membership bug. Client-facing / payload
classes opt out with a ``# repro: not-wire`` comment on their
``class`` line.
"""

import ast
import os

from repro.analysis.engine import path_matches
from repro.analysis.registry import Rule, register
from repro.analysis.suppress import is_not_wire


@register
class DispatchExhaustivenessRule(Rule):
    code = "PROTO001"
    name = "dispatch-exhaustiveness"
    description = (
        "a message class in a protocol's messages module has no "
        "isinstance/match dispatch arm in any of its dispatcher modules"
    )
    rationale = (
        "A wire-message class nobody dispatches is either dead protocol "
        "surface or a message silently dropped on the floor — the "
        "classic unmodeled-ordering membership bug. Every class in a "
        "protocol's messages module must have a dispatch arm in one of "
        "its dispatcher modules; client-facing or payload classes opt "
        "out with `# repro: not-wire` on their class line."
    )
    example_bad = (
        "# messages.py defines ProbeAck, but no dispatcher mentions it\n"
        "class ProbeAck:\n"
        "    ...\n"
    )
    example_good = (
        "def _on_datagram(self, message):\n"
        "    kind = type(message)\n"
        "    if kind is ProbeAck:\n"
        "        self._on_probe_ack(message)\n"
    )

    def check_project(self, project, config):
        for spec in config.protocols:
            messages = project.find(spec.messages)
            if messages is None:
                continue
            dispatched = set()
            missing_dispatchers = []
            for suffix in spec.dispatchers:
                dispatcher = project.find(suffix)
                if dispatcher is None:
                    dispatcher = _load_from_disk(messages.path, spec.messages, suffix)
                if dispatcher is None:
                    missing_dispatchers.append(suffix)
                    continue
                dispatched.update(_dispatched_names(dispatcher))
            for class_node in _wire_classes(messages):
                if class_node.name in dispatched:
                    continue
                detail = (
                    "; dispatcher(s) not found: {}".format(
                        ", ".join(missing_dispatchers)
                    )
                    if missing_dispatchers
                    else ""
                )
                yield messages.finding(
                    self.code,
                    class_node,
                    "message class {} has no dispatch arm in {}{}".format(
                        class_node.name, ", ".join(spec.dispatchers), detail
                    ),
                )


def _wire_classes(module):
    """Top-level classes not marked ``# repro: not-wire``."""
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if is_not_wire(module.line_text(node.lineno)):
            continue
        yield node


def _dispatched_names(module):
    """Class names appearing in dispatch arms.

    Recognized forms: ``isinstance(msg, Cls)``, ``match``/``case``
    class patterns, and exact-type identity comparisons — either
    ``type(msg) is Cls`` inline or ``kind is Cls`` where ``kind`` is a
    variable (the dispatcher hoists ``type(message)`` once). The
    identity heuristic accepts any ``is``/``is not`` against a name;
    collected names only count when they match a wire class, so the
    looseness cannot hide one that is never compared against at all.
    """
    names = set()
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            names.update(_class_names(node.args[1]))
        elif isinstance(node, ast.MatchClass):
            names.update(_class_names(node.cls))
        elif isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
        ):
            for comparator in node.comparators:
                names.update(_class_names(comparator))
    return names


def _class_names(node):
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    if isinstance(node, ast.Tuple):
        names = set()
        for element in node.elts:
            names.update(_class_names(element))
        return names
    return set()


def _load_from_disk(messages_path, messages_suffix, dispatcher_suffix):
    """Resolve a dispatcher that was not part of the lint run.

    The root is whatever prefix of ``messages_path`` the suffix match
    left over; the dispatcher suffix is resolved against it.
    """
    from repro.analysis.engine import ModuleContext

    path = messages_path.replace(os.sep, "/")
    if not path_matches(path, messages_suffix):
        return None
    root = path[: len(path) - len(messages_suffix)]
    candidate = root + dispatcher_suffix
    if not os.path.exists(candidate):
        return None
    with open(candidate, encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=candidate)
    except SyntaxError:
        return None
    return ModuleContext(candidate, source, tree)
