"""PROTO003 — protocol fields written outside declared transitions.

The membership/ordering invariants hold because every write to a
protocol-owned field (``state``, ``view``, ``delivered_aru``, …) goes
through the owning object's transition code, which maintains the
attendant bookkeeping. Two escapes break that:

* a handler reaching **into another object** and writing one of its
  protocol fields (``old_orderer.delivered_aru = seq``) — the owner's
  transition logic (duplicate guards, monotonicity, traces) is
  bypassed;
* an explicit-state machine assigning ``self.state`` a value that is
  not one of its declared state constants — the machine can enter a
  state no handler enumerates.

Scope: methods of classes that participate in a configured state
machine; the protected field list is ``config.protected_fields``.
"""

import ast

from repro.analysis.registry import Rule, register
from repro.analysis.statemachine import state_assign_targets


@register
class ProtocolFieldWriteRule(Rule):
    code = "PROTO003"
    name = "protocol-field-write"
    description = (
        "a state-machine participant writes a protocol-owned field "
        "(state/view/aru/epoch) outside the owning object's declared "
        "transition code"
    )
    rationale = (
        "Protocol fields carry invariants (monotone sequence counters, "
        "view/state agreement) that only the owning object's transition "
        "methods maintain. A write from outside — another object "
        "poking the field, or a computed state value — lands without "
        "the guards and bookkeeping, and the resulting states are "
        "exactly the arbitrary-state corruptions ROADMAP item 3 "
        "injects on purpose. Route the write through a method the "
        "owner declares."
    )
    example_bad = (
        "def apply_install(self, install):\n"
        "    for seq in sorted(union):\n"
        "        if seq > old_orderer.delivered_aru:\n"
        "            old_orderer.delivered_aru = seq   # bypasses the orderer\n"
        "            self.apply_ordered(union[seq])\n"
    )
    example_good = (
        "def apply_install(self, install):\n"
        "    for seq in sorted(union):\n"
        "        # the orderer advances its own counter, with its guards\n"
        "        if old_orderer.absorb_recovered(seq):\n"
        "            self.apply_ordered(union[seq])\n"
    )

    def check_project(self, project, config):
        protected = set(config.protected_fields)
        for machine in project.machines():
            module = machine.module
            data = machine.data
            for method in machine.class_node.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                for site, attr, owner in _foreign_field_writes(method, protected):
                    yield module.finding(
                        self.code,
                        site,
                        "machine `{}`: {}.{} writes protocol field `{}` of "
                        "`{}` directly; route it through a method the owner "
                        "declares".format(
                            data["name"], data["class"], method.name, attr, owner
                        ),
                    )
                if data["kind"] == "states":
                    for site, values in state_assign_targets(
                        method, machine.spec.state_attr, machine.state_constants
                    ):
                        if not values:
                            yield module.finding(
                                self.code,
                                site,
                                "machine `{}`: {}.{} assigns a non-constant to "
                                "self.{}; only declared state constants keep "
                                "the machine enumerable".format(
                                    data["name"],
                                    data["class"],
                                    method.name,
                                    machine.spec.state_attr,
                                ),
                            )


def _foreign_field_writes(method, protected):
    """(site, field, owner-expr) for protected writes on non-self objects."""
    for node in ast.walk(method):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if not isinstance(target, ast.Attribute) or target.attr not in protected:
                continue
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                continue
            yield node, target.attr, _owner_text(base)


def _owner_text(node):
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return "{}.{}".format(_owner_text(node.value), node.attr)
    return "<expr>"
