"""DET005 — RNG-stream discipline across components.

Every draw must be attributable to one (seed, stream name) pair owned
by one component: that is what makes campaign replay byte-identical
and lets a schedule shrink without perturbing unrelated draws. A
stream obtained under one component's name but *consumed inside
another component* couples their draw sequences — reordering either
component's events silently changes both.

The rule follows stream values flow-sensitively (the
:class:`~repro.analysis.dataflow.ReachingTags` lattice) from their
creation (``self.rng(...)``, ``*.stream(...)``, ``*.fork(...)``, or a
``self.<attr>`` the class assigned a stream to) through local aliases
to each call site, inside ``config.shard_scope``:

* a stream argument in a method call on **another object** is flagged
  (``model.drops(gray_rng)`` — the model now draws under the LAN's
  name);
* a stream argument captured by a **constructor** is flagged (the new
  object holds a foreign stream for life);
* a stream handed to a resolvable **plain function** is allowed
  *unless* the callee's escape summary shows the parameter is stored
  — explicit handoff to a pure drawing function (the
  ``generate_schedule(rng, ...)`` idiom) is the documented pattern;
* a zero-argument ``Random()`` is flagged anywhere in scope: an
  OS-seeded generator can never replay.

Calls on ``self`` and draws on the stream itself are always fine, and
anything unresolvable is conservatively allowed.
"""

import ast

from repro.analysis.engine import path_in_dir, path_matches
from repro.analysis.dataflow import ReachingTags
from repro.analysis.registry import Rule, register

_STREAM = "stream"
_STREAM_MAKERS = frozenset({"stream", "fork"})


@register
class RngStreamFlowRule(Rule):
    code = "DET005"
    name = "rng-stream-discipline"
    description = (
        "an RNG stream created under one component's name flows into "
        "another component's calls, or an unseeded Random escapes"
    )
    rationale = (
        "Replay and shrinking rely on every draw being a pure function "
        "of (seed, stream name), with each stream consumed by the "
        "component that named it. A stream that crosses components "
        "couples their draw sequences: deleting one fault from a "
        "schedule then shifts draws inside an unrelated component and "
        "the shrunk trace no longer reproduces. Pass draw *results* "
        "across components, or give the callee its own named stream."
    )
    example_bad = (
        "class Lan(Process):\n"
        "    def transmit(self):\n"
        "        rng = self.rng(\"lan\")\n"
        "        self.model.drops(rng)   # model draws under the LAN's name\n"
    )
    example_good = (
        "class Lan(Process):\n"
        "    def transmit(self):\n"
        "        # hand the model a decision, not the stream\n"
        "        if self.model.drops(self.rng(\"lan\").random()):\n"
        "            return\n"
    )

    def check_project(self, project, config):
        symbols = project.symbols()
        callgraph = project.callgraph()
        dataflow = project.dataflow()
        by_path = {module.path: module for module in project.modules}
        for path in sorted(symbols.modules):
            if not _in_scope(path, config):
                continue
            module = by_path.get(path)
            module_info = symbols.modules[path]
            if module is None:
                continue
            stream_attrs = _stream_attrs_by_class(module_info)
            for func in _functions_of(module_info):
                attrs = stream_attrs.get(func.class_name, frozenset())
                classify = _make_classifier(attrs)
                lattice = ReachingTags(func.node, classify)
                for finding in self._check_function(
                    func, lattice, module, callgraph, dataflow
                ):
                    yield finding
            for node in ast.walk(module_info.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "Random"
                    and not node.args
                    and not node.keywords
                ):
                    yield module.finding(
                        self.code,
                        node,
                        "unseeded Random(): OS-seeded state can never replay; "
                        "draw from a named RngRegistry stream",
                    )

    def _check_function(self, func, lattice, module, callgraph, dataflow):
        for call in ast.walk(func.node):
            if not isinstance(call, ast.Call):
                continue
            stream_args = _stream_arguments(call, lattice)
            if not stream_args:
                continue
            target = call.func
            if isinstance(target, ast.Attribute):
                base = target.value
                if isinstance(base, ast.Name) and base.id == "self":
                    continue  # own method: same component
                if _STREAM in lattice.tags_of(base):
                    continue  # a draw (or fork) on the stream itself
                if target.attr in _STREAM_MAKERS:
                    continue  # registry plumbing creates streams
                yield module.finding(
                    self.code,
                    call,
                    "RNG stream passed into another object's method "
                    "(`{}`); the callee now draws under this component's "
                    "stream name".format(_describe(target)),
                )
                continue
            if isinstance(target, ast.Name):
                resolved = callgraph.resolve_call(func, call)
                if resolved is None:
                    continue  # unresolvable: err toward silence
                if not hasattr(resolved, "node") or isinstance(
                    resolved.node, ast.ClassDef
                ):
                    yield module.finding(
                        self.code,
                        call,
                        "RNG stream captured by `{}(...)`: the constructed "
                        "object holds a foreign stream; give it its own "
                        "named stream instead".format(target.id),
                    )
                    continue
                for param in _escaping_stream_params(
                    call, stream_args, resolved, dataflow
                ):
                    yield module.finding(
                        self.code,
                        call,
                        "RNG stream escapes through `{}`: parameter `{}` is "
                        "stored beyond the call".format(target.id, param),
                    )


def _in_scope(path, config):
    for exempt in config.random_exempt:
        if path_matches(path, exempt):
            return False
    for prefix in config.shard_scope:
        if path_in_dir(path, prefix) or path_matches(path, prefix):
            return True
    return False


def _stream_attrs_by_class(module_info):
    """``{class name: attrs assigned a stream expression somewhere}``."""
    out = {}
    for class_name in sorted(module_info.classes):
        info = module_info.classes[class_name]
        attrs = set()
        for method_name in sorted(info.methods):
            for node in ast.walk(info.methods[method_name].node):
                if not isinstance(node, ast.Assign):
                    continue
                if not _is_stream_call(node.value):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        out[class_name] = frozenset(attrs)
    return out


def _is_stream_call(node):
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return False
    func = node.func
    if func.attr in _STREAM_MAKERS:
        return True
    return (
        func.attr == "rng"
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    )


def _make_classifier(stream_attrs):
    def classify(node, env):
        if _is_stream_call(node):
            return {_STREAM}
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in stream_attrs
        ):
            return {_STREAM}
        return ()

    return classify


def _functions_of(module_info):
    out = []
    for name in sorted(module_info.functions):
        out.append(module_info.functions[name])
    for class_name in sorted(module_info.classes):
        info = module_info.classes[class_name]
        for method_name in sorted(info.methods):
            out.append(info.methods[method_name])
    return out


def _stream_arguments(call, lattice):
    """``{position-or-keyword: arg node}`` for stream-tagged arguments."""
    out = {}
    for index, arg in enumerate(call.args):
        if _STREAM in lattice.tags_of(arg):
            out[index] = arg
    for keyword in call.keywords:
        if keyword.arg is not None and _STREAM in lattice.tags_of(keyword.value):
            out[keyword.arg] = keyword.value
    return out


def _escaping_stream_params(call, stream_args, callee, dataflow):
    """Callee parameter names that both receive a stream and escape."""
    params = [a.arg for a in callee.node.args.args if a.arg != "self"]
    escaping = []
    for key in sorted(stream_args, key=str):
        if isinstance(key, int):
            if key < len(params):
                name = params[key]
            else:
                continue
        else:
            name = key
        if dataflow.param_escapes(callee.qualname, name):
            escaping.append(name)
    return escaping


def _describe(attribute):
    parts = [attribute.attr]
    node = attribute.value
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))
