"""DET002 — unseeded randomness outside the RNG registry.

All randomness must flow through :class:`repro.sim.rng.RngRegistry`
named streams so that every draw is a pure function of (seed, stream
name). A stray ``import random`` (module-level Mersenne state, seeded
from the OS) breaks replay across processes and runs.
"""

import ast

from repro.analysis.engine import path_matches
from repro.analysis.registry import Rule, register


@register
class UnseededRandomRule(Rule):
    code = "DET002"
    name = "unseeded-random"
    description = (
        "use of the global `random` module outside repro.sim.rng; draw from "
        "a named RngRegistry stream instead"
    )
    rationale = (
        "The global `random` module is one Mersenne state per process, "
        "seeded from the OS. Any draw through it couples unrelated "
        "components, differs between workers, and cannot be replayed "
        "from a failure artifact. Every draw must come from a named "
        "RngRegistry stream so it is a pure function of (seed, name)."
    )
    example_bad = (
        "import random\n"
        "\n"
        "def jitter(self):\n"
        "    return random.uniform(0.0, 0.1)\n"
    )
    example_good = (
        "def jitter(self):\n"
        "    return self.rng(\"jitter\").uniform(0.0, 0.1)\n"
    )

    def check_module(self, module, config):
        for exempt in config.random_exempt:
            if path_matches(module.path, exempt):
                return
        random_aliases = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        random_aliases.add(alias.asname or alias.name.split(".")[0])
                        yield module.finding(
                            self.code,
                            node,
                            "import of the global `random` module; use an "
                            "RngRegistry stream (sim.rng) instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                # `from random import Random` for *seeded* instances is the
                # registry's own business; anything else smuggles global state.
                names = [alias.name for alias in node.names]
                if names != ["Random"]:
                    yield module.finding(
                        self.code,
                        node,
                        "from random import {}; only seeded Random instances "
                        "via RngRegistry are deterministic".format(", ".join(names)),
                    )
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in random_aliases
            ):
                yield module.finding(
                    self.code,
                    node,
                    "call into the global `random` module (random.{}); draws "
                    "must come from a named RngRegistry stream".format(node.attr),
                )
