"""DET001 — wall-clock reads outside the simulation clock.

Simulated components must take time from ``sim.now`` (virtual time);
any real-clock read makes traces, timeouts, and therefore replay
verdicts depend on host speed. Only :mod:`repro.sim.scheduler` (and
explicitly allowed reporting lines) may touch the real clock.
"""

import ast

from repro.analysis.engine import path_matches
from repro.analysis.registry import Rule, register

_TIME_FUNCS = {"time", "monotonic", "perf_counter", "process_time", "time_ns"}
_DATETIME_FUNCS = {"now", "utcnow", "today"}


@register
class WallClockRule(Rule):
    code = "DET001"
    name = "wall-clock"
    description = (
        "real-clock read (time.time / time.monotonic / datetime.now ...) "
        "outside the simulation scheduler"
    )
    rationale = (
        "Replay verdicts must be pure functions of (seed, schedule). A "
        "real-clock read makes timeouts and traces depend on host speed "
        "and load, so the same failure artifact can pass on one machine "
        "and fail on another. Simulated components take time from "
        "sim.now; only the scheduler (and explicitly allowed reporting "
        "lines that never feed a verdict) may touch the real clock."
    )
    example_bad = (
        "def on_heartbeat(self, msg):\n"
        "    self.last_seen = time.time()   # host wall clock\n"
    )
    example_good = (
        "def on_heartbeat(self, msg):\n"
        "    self.last_seen = self.sim.now   # virtual time\n"
    )

    def check_module(self, module, config):
        for exempt in config.wallclock_exempt:
            if path_matches(module.path, exempt):
                return
        imported_time_names = set()
        imported_datetime_names = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    imported_time_names.update(
                        alias.asname or alias.name
                        for alias in node.names
                        if alias.name in _TIME_FUNCS
                    )
                elif node.module == "datetime":
                    imported_datetime_names.update(
                        alias.asname or alias.name
                        for alias in node.names
                        if alias.name in ("datetime", "date")
                    )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id == "time"
                    and func.attr in _TIME_FUNCS
                ):
                    yield module.finding(
                        self.code,
                        node,
                        "wall-clock read time.{}(); use the simulation clock "
                        "(sim.now) instead".format(func.attr),
                    )
                elif func.attr in _DATETIME_FUNCS and self._is_datetime(
                    base, imported_datetime_names
                ):
                    yield module.finding(
                        self.code,
                        node,
                        "wall-clock read {}.{}(); simulated code must not "
                        "observe the real date".format(self._dotted(base), func.attr),
                    )
            elif isinstance(func, ast.Name) and func.id in imported_time_names:
                yield module.finding(
                    self.code,
                    node,
                    "wall-clock read {}(); use the simulation clock "
                    "(sim.now) instead".format(func.id),
                )

    @staticmethod
    def _is_datetime(base, imported_names):
        # datetime.now() with `from datetime import datetime`, or
        # datetime.datetime.now() with `import datetime`.
        if isinstance(base, ast.Name):
            return base.id in imported_names or base.id == "datetime"
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            return base.value.id == "datetime" and base.attr in ("datetime", "date")
        return False

    @staticmethod
    def _dotted(base):
        if isinstance(base, ast.Name):
            return base.id
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            return "{}.{}".format(base.value.id, base.attr)
        return "datetime"
