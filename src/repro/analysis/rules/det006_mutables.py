"""DET006 — mutable defaults and class-level mutable containers.

Both are the same trap at different scopes: a container evaluated
once (at ``def`` time or ``class`` time) and then shared by every
call or every instance. Inside the simulated substrate that sharing
is state leaking *between simulations in one process* — two
back-to-back ``Simulation`` runs see each other's leftovers, which
breaks the replay guarantee and, under ROADMAP item 5, diverges
between shard workers (each process gets a fresh copy).
"""

import ast

from repro.analysis.dataflow import is_mutable_container
from repro.analysis.engine import path_in_dir, path_matches
from repro.analysis.registry import Rule, register


@register
class MutableSharedContainerRule(Rule):
    code = "DET006"
    name = "mutable-shared-container"
    description = (
        "mutable default argument or class-level mutable container on a "
        "sim-substrate class; evaluated once and shared by every "
        "call/instance"
    )
    rationale = (
        "A default argument is evaluated at def time and a class "
        "attribute at class time; both outlive any single Simulation. "
        "State accumulated in one run leaks into the next, so replay "
        "from (seed, schedule) is no longer pure, and under the "
        "sharded kernel each worker process silently gets its own "
        "divergent copy. Bind fresh containers in __init__ or default "
        "to None."
    )
    example_bad = (
        "class Daemon(Process):\n"
        "    pending = []           # one list shared by every daemon\n"
        "\n"
        "    def send(self, msg, seen={}):   # one dict for every call\n"
        "        seen[msg.id] = True\n"
    )
    example_good = (
        "class Daemon(Process):\n"
        "    def __init__(self):\n"
        "        self.pending = []  # per-instance\n"
        "\n"
        "    def send(self, msg, seen=None):\n"
        "        seen = {} if seen is None else seen\n"
    )

    def check_module(self, module, config):
        if not _in_scope(module.path, config):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if is_mutable_container(default):
                        yield module.finding(
                            self.code,
                            default,
                            "mutable default argument on `{}`: evaluated once "
                            "at def time and shared by every call".format(
                                node.name
                            ),
                        )
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if not isinstance(item, ast.Assign):
                        continue
                    if not is_mutable_container(item.value):
                        continue
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            yield module.finding(
                                self.code,
                                item,
                                "class-level mutable container `{}.{}`: shared "
                                "by every instance; bind it in "
                                "__init__".format(node.name, target.id),
                            )


def _in_scope(path, config):
    for prefix in config.sim_restricted:
        if path_in_dir(path, prefix) or path_matches(path, prefix):
            return True
    return False
