"""DET004 — id()/hash() in ordering keys and tie-breaks.

``id()`` is an address (different every process), and ``hash()`` of
str/bytes is randomised per interpreter unless PYTHONHASHSEED is
pinned. Either one inside a sort key or a comparison tie-break makes
orderings differ across processes — exactly the
``CoverageAuditor.components()`` bug PR 1 needed thousands of trials to
surface. Order by a stable attribute (name, sequence number) instead.
"""

import ast

from repro.analysis.registry import Rule, register

_SORT_CALLS = {"sorted", "min", "max"}
_UNSTABLE = {"id", "hash"}


@register
class IdHashOrderingRule(Rule):
    code = "DET004"
    name = "id-hash-ordering"
    description = (
        "id()/hash() used as (or inside) a sort key or an ordering "
        "comparison; use a stable attribute instead"
    )
    rationale = (
        "id() is a memory address and hash() of a str is salted by the "
        "per-process hash seed — neither survives a process boundary. A "
        "sort or tie-break keyed on them gives a different order in the "
        "replay process than in the original run, so the failure no "
        "longer reproduces. Key on a stable attribute (name, address, "
        "sequence number) instead."
    )
    example_bad = (
        "winner = min(candidates, key=id)   # memory-address tie-break\n"
    )
    example_good = (
        "winner = min(candidates, key=lambda host: host.name)\n"
    )

    def check_module(self, module, config):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                for finding in self._check_sort_call(module, node):
                    yield finding
            elif isinstance(node, ast.Compare):
                for finding in self._check_compare(module, node):
                    yield finding

    def _check_sort_call(self, module, node):
        func = node.func
        is_sortish = (
            isinstance(func, ast.Name) and func.id in _SORT_CALLS
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if not is_sortish:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            key = keyword.value
            if isinstance(key, ast.Name) and key.id in _UNSTABLE:
                yield module.finding(
                    self.code,
                    key,
                    "key={} orders by a per-process value; sort by a "
                    "stable attribute instead".format(key.id),
                )
                continue
            for inner in ast.walk(key):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id in _UNSTABLE
                ):
                    yield module.finding(
                        self.code,
                        inner,
                        "{}() inside a sort key orders by a per-process "
                        "value; sort by a stable attribute instead".format(
                            inner.func.id
                        ),
                    )

    def _check_compare(self, module, node):
        ordering_ops = (ast.Lt, ast.Gt, ast.LtE, ast.GtE)
        if not any(isinstance(op, ordering_ops) for op in node.ops):
            return
        for side in [node.left] + list(node.comparators):
            if (
                isinstance(side, ast.Call)
                and isinstance(side.func, ast.Name)
                and side.func.id in _UNSTABLE
            ):
                yield module.finding(
                    self.code,
                    side,
                    "ordering comparison on {}(); per-process values must "
                    "not break ties".format(side.func.id),
                )
