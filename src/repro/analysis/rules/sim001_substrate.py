"""SIM001 — real concurrency or sockets inside the simulated substrate.

The protocol packages (``repro/{core,gcs,sim,net}``) run entirely on
the single-threaded virtual-time scheduler; a real thread, event loop,
or kernel socket there would introduce host-timing nondeterminism that
no fault-schedule replay can reproduce. Worker fan-out belongs in
:mod:`repro.check` (outside the substrate), which forks whole
interpreter processes around the simulation, never inside it.
"""

import ast

from repro.analysis.engine import path_in_dir
from repro.analysis.registry import Rule, register

_FORBIDDEN_ROOTS = {
    "threading",
    "_thread",
    "asyncio",
    "socket",
    "socketserver",
    "selectors",
    "multiprocessing",
    "concurrent",
    "queue",
}


@register
class SubstrateRule(Rule):
    code = "SIM001"
    name = "substrate-purity"
    description = (
        "threading/asyncio/real-socket import inside the simulated "
        "substrate (repro/{core,gcs,sim,net}); the substrate must stay "
        "single-threaded and virtual-time"
    )
    rationale = (
        "The substrate runs entirely on the single-threaded virtual-time "
        "scheduler; a real thread, event loop, or kernel socket there "
        "introduces host-timing nondeterminism no fault-schedule replay "
        "can reproduce. Worker fan-out belongs in repro.check, which "
        "forks whole interpreter processes around the simulation, never "
        "inside it."
    )
    example_bad = (
        "# inside repro/gcs/daemon.py\n"
        "import threading\n"
        "\n"
        "threading.Thread(target=self._poll).start()\n"
    )
    example_good = (
        "# schedule virtual-time work on the simulation instead\n"
        "self.sim.call_later(self.interval, self._poll)\n"
    )

    def check_module(self, module, config):
        restricted = config.sim_restricted
        if restricted and not any(
            path_in_dir(module.path, prefix) for prefix in restricted
        ):
            return
        if config.edge_reason(module.path) is not None:
            # Declared edge infrastructure (config.sim_edge): the module
            # exists to cross the process boundary, with its reason on
            # record. The allowance is per-file, never per-directory.
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _FORBIDDEN_ROOTS:
                        yield module.finding(
                            self.code,
                            node,
                            "import {} inside the simulated substrate; use "
                            "the virtual-time scheduler and simulated "
                            "network instead".format(alias.name),
                        )
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                root = node.module.split(".")[0]
                if root in _FORBIDDEN_ROOTS:
                    yield module.finding(
                        self.code,
                        node,
                        "from {} import ... inside the simulated substrate; "
                        "use the virtual-time scheduler and simulated "
                        "network instead".format(node.module),
                    )
