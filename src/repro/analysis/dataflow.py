"""Intraprocedural dataflow and conservative interprocedural summaries.

Two layers feed the flow-aware rules:

* :class:`ReachingTags` — a small flow-sensitive reaching-definitions
  lattice over one function body. Abstract values are *sets of tags*
  (supplied by a rule-specific classifier); the transfer function is
  assignment, the join at branch merges is set union, and loops are
  handled by running the body transfer twice (tags only accumulate, so
  two passes reach the fixed point of this monotone frame). DET005
  instantiates it with an "RNG stream" classifier to follow a stream
  from ``self.rng("x")`` through local aliases to the call where it
  escapes its component.

* :class:`ProjectDataflow` — per-function mutation/escape summaries
  (which ``self`` attributes a function writes, which module globals
  it mutates or rebinds, which of its parameters it stores beyond the
  call) plus an interprocedural fixed point propagating parameter
  escape through the call graph. Everything is conservative: an
  unresolved call neither creates nor hides an escape.

Like the call graph, every table here is built and iterated in sorted
order so two runs are structurally identical.
"""

import ast

MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "update",
        "setdefault",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "appendleft",
        "sort",
        "reverse",
    }
)

MUTABLE_LITERAL_CALLS = frozenset({"dict", "list", "set", "defaultdict", "deque"})


def is_mutable_container(node):
    """True for dict/list/set literals, comprehensions and constructors."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in MUTABLE_LITERAL_CALLS
    )


# ----------------------------------------------------------------------
# the intraprocedural lattice


class ReachingTags:
    """Reaching definitions over one function, tags as abstract values.

    ``classify(expr, env)`` returns a set of tags for an expression
    (empty when unremarkable); ``env`` maps local name -> frozenset of
    tags at the current program point. The analysis records, for every
    expression node visited, the environment in effect *before* it —
    rules then query :meth:`tags_of` at the nodes they care about.
    """

    def __init__(self, func_node, classify):
        self.classify = classify
        self._env_at = {}
        env = {}
        # Two monotone passes: the second sees loop-carried bindings.
        for _ in range(2):
            env = self._run_block(func_node.body, dict(env))

    # ------------------------------------------------------------------

    def tags_of(self, node, env=None):
        """Tags reaching ``node`` (an expression), resolved via its env."""
        if env is None:
            env = self._env_at.get(id(node), {})
        direct = self.classify(node, env)
        if direct:
            return frozenset(direct)
        if isinstance(node, ast.Name):
            return env.get(node.id, frozenset())
        return frozenset()

    # ------------------------------------------------------------------

    def _run_block(self, statements, env):
        for statement in statements:
            env = self._run_statement(statement, env)
        return env

    def _run_statement(self, node, env):
        self._record(node, env)
        if isinstance(node, ast.Assign):
            tags = self.tags_of(node.value, env)
            for target in node.targets:
                env = self._bind(target, tags, env)
            return env
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            return self._bind(node.target, self.tags_of(node.value, env), env)
        if isinstance(node, ast.AugAssign):
            return env
        if isinstance(node, ast.If):
            then_env = self._run_block(node.body, dict(env))
            else_env = self._run_block(node.orelse, dict(env))
            return _join(then_env, else_env)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            body_env = self._run_block(node.body, dict(env))
            body_env = self._run_block(node.orelse, body_env)
            return _join(env, body_env)
        if isinstance(node, ast.While):
            body_env = self._run_block(node.body, dict(env))
            body_env = self._run_block(node.orelse, body_env)
            return _join(env, body_env)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return self._run_block(node.body, env)
        if isinstance(node, ast.Try):
            out = self._run_block(node.body, dict(env))
            for handler in node.handlers:
                out = _join(out, self._run_block(handler.body, dict(env)))
            out = self._run_block(node.orelse, out)
            return self._run_block(node.finalbody, out)
        return env

    def _bind(self, target, tags, env):
        if isinstance(target, ast.Name):
            env = dict(env)
            if tags:
                env[target.id] = frozenset(tags)
            else:
                env.pop(target.id, None)
            return env
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                env = self._bind(element, frozenset(), env)
        return env

    def _record(self, statement, env):
        frozen = dict(env)
        for node in ast.walk(statement):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if id(node) not in self._env_at:
                self._env_at[id(node)] = frozen


def _join(left, right):
    out = dict(left)
    for name, tags in right.items():
        out[name] = out.get(name, frozenset()) | tags
    return out


# ----------------------------------------------------------------------
# per-function summaries


class FunctionSummary:
    """What one function does to state beyond its own locals."""

    __slots__ = (
        "qualname",
        "self_writes",
        "self_mutations",
        "global_mutations",
        "global_rebinds",
        "escaping_params",
    )

    def __init__(self, qualname):
        self.qualname = qualname
        # attribute names assigned via ``self.x = ...``
        self.self_writes = set()
        # attribute names mutated via ``self.x.append(...)`` / ``self.x[k] = ...``
        self.self_mutations = set()
        # module-global names mutated in place (with the owning module path)
        self.global_mutations = set()
        # names rebound through a ``global`` declaration
        self.global_rebinds = set()
        # parameter names stored into attributes/globals/containers
        self.escaping_params = set()

    def to_dict(self):
        return {
            "qualname": self.qualname,
            "self_writes": sorted(self.self_writes),
            "self_mutations": sorted(self.self_mutations),
            "global_mutations": sorted(self.global_mutations),
            "global_rebinds": sorted(self.global_rebinds),
            "escaping_params": sorted(self.escaping_params),
        }


def summarize_function(func_info, module_globals):
    """Build a :class:`FunctionSummary` for one function.

    ``module_globals`` is the set of module-level names of the
    function's own module that hold mutable containers — only those
    can be mutated in place.
    """
    summary = FunctionSummary(func_info.qualname)
    node = func_info.node
    params = {arg.arg for arg in node.args.args + node.args.kwonlyargs}
    params.discard("self")
    declared_global = set()
    for item in _function_nodes(node):
        if isinstance(item, ast.Global):
            declared_global.update(item.names)
            summary.global_rebinds.update(item.names)
        elif isinstance(item, ast.Assign) or isinstance(item, ast.AugAssign):
            targets = item.targets if isinstance(item, ast.Assign) else [item.target]
            for target in targets:
                _record_store(summary, target, module_globals, declared_global)
            value = item.value
            for name in _captured_names(value):
                if name in params and _stores_into_state(item, module_globals):
                    summary.escaping_params.add(name)
        elif isinstance(item, ast.Call):
            _record_call(summary, item, module_globals, params)
    return summary


def _function_nodes(func_node):
    """Walk a function body without descending into nested defs."""
    stack = list(func_node.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _record_store(summary, target, module_globals, declared_global):
    if isinstance(target, ast.Attribute):
        base = target.value
        if isinstance(base, ast.Name) and base.id == "self":
            summary.self_writes.add(target.attr)
    elif isinstance(target, ast.Subscript):
        base = target.value
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            if base.value.id == "self":
                summary.self_mutations.add(base.attr)
        elif isinstance(base, ast.Name):
            if base.id in module_globals and base.id not in declared_global:
                summary.global_mutations.add(base.id)
    elif isinstance(target, ast.Name):
        if target.id in declared_global:
            summary.global_rebinds.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _record_store(summary, element, module_globals, declared_global)


def _record_call(summary, call, module_globals, params):
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in MUTATING_METHODS:
        return
    base = func.value
    if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
        if base.value.id == "self":
            summary.self_mutations.add(base.attr)
    elif isinstance(base, ast.Name) and base.id in module_globals:
        summary.global_mutations.add(base.id)
    # a parameter fed directly to a mutating container call escapes
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for name in _captured_names(arg):
            if name in params and isinstance(base, (ast.Attribute, ast.Name)):
                summary.escaping_params.add(name)


def _stores_into_state(assign, module_globals):
    targets = assign.targets if isinstance(assign, ast.Assign) else [assign.target]
    for target in targets:
        if isinstance(target, ast.Attribute):
            return True
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Attribute):
                return True
            if isinstance(base, ast.Name) and base.id in module_globals:
                return True
    return False


def _captured_names(node):
    """Names an expression *captures* (stores by reference).

    A bare name or a name inside a container literal is captured; a
    name nested inside a call is not — the call's result is a new
    value, and the callee's own summary (closed over the call graph)
    decides whether *it* stores the argument.
    """
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Starred):
        return _captured_names(node.value)
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        names = set()
        for element in node.elts:
            names.update(_captured_names(element))
        return names
    if isinstance(node, ast.Dict):
        names = set()
        for value in node.values:
            names.update(_captured_names(value))
        return names
    return set()


# ----------------------------------------------------------------------
# project-level assembly


class ProjectDataflow:
    """Summaries for every function plus interprocedural escape closure."""

    def __init__(self, symbols, callgraph):
        self.symbols = symbols
        self.callgraph = callgraph
        self.summaries = {}
        self.mutable_globals = {}
        for path in sorted(symbols.modules):
            module = symbols.modules[path]
            names = set()
            for statement in module.tree.body:
                if isinstance(statement, ast.Assign):
                    if is_mutable_container(statement.value):
                        for target in statement.targets:
                            if isinstance(target, ast.Name):
                                names.add(target.id)
            self.mutable_globals[path] = names
        for func in symbols.all_functions():
            self.summaries[func.qualname] = summarize_function(
                func, self.mutable_globals[func.module.path]
            )
        self._close_param_escape()

    # ------------------------------------------------------------------

    def summary_of(self, qualname):
        return self.summaries.get(qualname)

    def param_escapes(self, qualname, param_name):
        """True when a function stores ``param_name`` beyond the call."""
        summary = self.summaries.get(qualname)
        return summary is not None and param_name in summary.escaping_params

    def global_mutators(self, module_path, global_name):
        """Qualnames of functions that mutate one module global, sorted."""
        out = []
        module = self.symbols.modules.get(module_path)
        if module is None:
            return out
        for qualname in sorted(self.summaries):
            summary = self.summaries[qualname]
            if global_name not in summary.global_mutations:
                continue
            info = self.callgraph._function_by_qualname(qualname)
            if info is not None and info.module.path == module_path:
                out.append(qualname)
        return out

    # ------------------------------------------------------------------

    def _close_param_escape(self):
        """Propagate escape through calls: f(x) where f stores its arg.

        One fixed-point sweep over the call graph: if function ``f``
        passes its own parameter ``p`` as a positional argument to a
        callee whose matching parameter escapes, then ``p`` escapes
        from ``f`` as well. Keyword arguments match by name.
        """
        changed = True
        while changed:
            changed = False
            for func in self.symbols.all_functions():
                summary = self.summaries[func.qualname]
                params = {a.arg for a in func.node.args.args + func.node.args.kwonlyargs}
                params.discard("self")
                for call in (
                    n for n in _function_nodes(func.node) if isinstance(n, ast.Call)
                ):
                    callee = self.callgraph.resolve_call(func, call)
                    if callee is None or not hasattr(callee, "node"):
                        continue
                    if isinstance(callee.node, ast.ClassDef):
                        continue
                    callee_summary = self.summaries.get(callee.qualname)
                    if callee_summary is None:
                        continue
                    callee_params = [
                        a.arg
                        for a in callee.node.args.args
                        if a.arg != "self"
                    ]
                    for index, arg in enumerate(call.args):
                        if index >= len(callee_params):
                            break
                        if callee_params[index] not in callee_summary.escaping_params:
                            continue
                        for name in _captured_names(arg):
                            if name in params and name not in summary.escaping_params:
                                summary.escaping_params.add(name)
                                changed = True
                    for keyword in call.keywords:
                        if keyword.arg not in callee_summary.escaping_params:
                            continue
                        for name in _captured_names(keyword.value):
                            if name in params and name not in summary.escaping_params:
                                summary.escaping_params.add(name)
                                changed = True
