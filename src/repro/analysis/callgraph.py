"""Project-wide symbol table and call graph.

The flow-aware rules (SHARD001, DET005, PROTO003) need to answer
questions a single module's AST cannot: *which class does this call
land in*, *is this class a simulated process*, *who can reach this
function*. This module builds that picture purely syntactically — one
pass over the already-parsed module set, no imports executed — and
deterministically: every table is keyed and iterated in sorted order,
so two builds over the same tree are structurally identical (a
property tests/analysis asserts byte-for-byte through the reports).

Resolution is deliberately conservative. A call that cannot be
resolved to a project symbol produces no edge; rules built on the
graph therefore err toward silence, mirroring settypes.py.

Qualified names ("qualnames") look like ``repro.gcs.daemon.SpreadDaemon.start``
for methods and ``repro.net.nic.allocate_mac`` for module functions;
classes are ``repro.gcs.daemon.SpreadDaemon``.
"""

import ast


def module_dotted_name(path):
    """Dotted module name for a source path.

    ``src/repro/gcs/daemon.py`` -> ``repro.gcs.daemon``; for paths
    outside a ``repro`` tree (fixtures, tmp files) the name is the
    stem, so single-file projects still resolve their own symbols.
    """
    parts = path.replace("\\", "/").split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = parts[-1:]
    return ".".join(parts)


class FunctionInfo:
    """One function or method definition."""

    __slots__ = ("qualname", "node", "module", "class_name")

    def __init__(self, qualname, node, module, class_name=None):
        self.qualname = qualname
        self.node = node
        self.module = module
        self.class_name = class_name

    @property
    def name(self):
        return self.node.name

    def __repr__(self):
        return "FunctionInfo({})".format(self.qualname)


class ClassInfo:
    """One class definition: methods, raw base expressions, class attrs."""

    __slots__ = ("qualname", "node", "module", "methods", "base_exprs", "class_attrs")

    def __init__(self, qualname, node, module):
        self.qualname = qualname
        self.node = node
        self.module = module
        self.methods = {}
        self.base_exprs = list(node.bases)
        # class-level Assign statements: attr name -> value node
        self.class_attrs = {}

    @property
    def name(self):
        return self.node.name

    def __repr__(self):
        return "ClassInfo({})".format(self.qualname)


class ModuleInfo:
    """Symbols of one module: imports, top-level functions and classes."""

    __slots__ = ("path", "dotted", "tree", "imports", "functions", "classes")

    def __init__(self, module_context):
        self.path = module_context.path
        self.dotted = module_dotted_name(module_context.path)
        self.tree = module_context.tree
        # local alias -> dotted target ("repro.gcs.messages" for module
        # imports, "repro.gcs.messages.JoinMsg" for from-imports).
        self.imports = {}
        self.functions = {}
        self.classes = {}
        self._index()

    def _index(self):
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = "{}.{}".format(node.module, alias.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = "{}.{}".format(self.dotted, node.name)
                self.functions[node.name] = FunctionInfo(qualname, node, self)
            elif isinstance(node, ast.ClassDef):
                qualname = "{}.{}".format(self.dotted, node.name)
                info = ClassInfo(qualname, node, self)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qualname = "{}.{}".format(qualname, item.name)
                        info.methods[item.name] = FunctionInfo(
                            method_qualname, item, self, class_name=node.name
                        )
                    elif isinstance(item, ast.Assign):
                        for target in item.targets:
                            if isinstance(target, ast.Name):
                                info.class_attrs[target.id] = item.value
                self.classes[node.name] = info


class SymbolTable:
    """Every module's symbols plus cross-module class resolution."""

    def __init__(self, module_contexts):
        self.modules = {}
        for context in module_contexts:
            info = ModuleInfo(context)
            self.modules[info.path] = info
        self.by_dotted = {}
        for path in sorted(self.modules):
            info = self.modules[path]
            self.by_dotted.setdefault(info.dotted, info)
        self._bases_cache = {}

    # ------------------------------------------------------------------
    # lookup

    def resolve_dotted(self, dotted):
        """A ClassInfo/FunctionInfo for a dotted target, or None."""
        module = self.by_dotted.get(dotted)
        if module is not None:
            return module
        parent, _, leaf = dotted.rpartition(".")
        module = self.by_dotted.get(parent)
        if module is None:
            return None
        return module.classes.get(leaf) or module.functions.get(leaf)

    def resolve_name(self, module_info, name):
        """What a bare name means inside ``module_info``: symbol or None."""
        if name in module_info.classes:
            return module_info.classes[name]
        if name in module_info.functions:
            return module_info.functions[name]
        target = module_info.imports.get(name)
        if target is None:
            return None
        return self.resolve_dotted(target)

    def class_of_function(self, func_info):
        """The ClassInfo a method belongs to, or None for functions."""
        if func_info.class_name is None:
            return None
        return func_info.module.classes.get(func_info.class_name)

    # ------------------------------------------------------------------
    # inheritance

    def base_classes(self, class_info):
        """Resolved direct bases (project classes only), sorted order."""
        cached = self._bases_cache.get(class_info.qualname)
        if cached is not None:
            return cached
        bases = []
        for expr in class_info.base_exprs:
            resolved = None
            if isinstance(expr, ast.Name):
                resolved = self.resolve_name(class_info.module, expr.id)
            elif isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
                target = class_info.module.imports.get(expr.value.id)
                if target is not None:
                    resolved = self.resolve_dotted("{}.{}".format(target, expr.attr))
            if isinstance(resolved, ClassInfo):
                bases.append(resolved)
        self._bases_cache[class_info.qualname] = bases
        return bases

    def ancestry(self, class_info):
        """The class and every resolvable ancestor, depth-first."""
        seen = []
        seen_names = set()
        stack = [class_info]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen_names:
                continue
            seen_names.add(current.qualname)
            seen.append(current)
            stack.extend(self.base_classes(current))
        return seen

    def is_subclass_of(self, class_info, base_qualname_suffix):
        """True when an ancestor's qualname ends with the given suffix."""
        for ancestor in self.ancestry(class_info):
            if ancestor.qualname == base_qualname_suffix or ancestor.qualname.endswith(
                "." + base_qualname_suffix
            ):
                return True
        return False

    def lookup_method(self, class_info, method_name):
        """Resolve a method through the (approximate, DFS) MRO."""
        for ancestor in self.ancestry(class_info):
            method = ancestor.methods.get(method_name)
            if method is not None:
                return method
        return None

    # ------------------------------------------------------------------
    # iteration

    def all_functions(self):
        """Every FunctionInfo in the table, sorted by qualname."""
        out = []
        for path in sorted(self.modules):
            module = self.modules[path]
            for name in sorted(module.functions):
                out.append(module.functions[name])
            for class_name in sorted(module.classes):
                info = module.classes[class_name]
                for method_name in sorted(info.methods):
                    out.append(info.methods[method_name])
        return out

    def all_classes(self):
        """Every ClassInfo, sorted by qualname."""
        out = []
        for path in sorted(self.modules):
            module = self.modules[path]
            for class_name in sorted(module.classes):
                out.append(module.classes[class_name])
        return out


class CallGraph:
    """Caller -> callee qualname edges over a :class:`SymbolTable`."""

    def __init__(self, symbols):
        self.symbols = symbols
        self.edges = {}
        self.reverse = {}
        # call sites that *construct* a project class: caller -> class qualnames
        self.constructs = {}
        self._build()

    # ------------------------------------------------------------------

    def _build(self):
        for func in self.symbols.all_functions():
            callees = set()
            constructed = set()
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = self.resolve_call(func, node)
                if resolved is None:
                    continue
                if isinstance(resolved, ClassInfo):
                    constructed.add(resolved.qualname)
                    init = self.symbols.lookup_method(resolved, "__init__")
                    if init is not None:
                        callees.add(init.qualname)
                else:
                    callees.add(resolved.qualname)
            self.edges[func.qualname] = sorted(callees)
            self.constructs[func.qualname] = sorted(constructed)
            for callee in self.edges[func.qualname]:
                self.reverse.setdefault(callee, set()).add(func.qualname)

    def resolve_call(self, func_info, call_node):
        """The FunctionInfo/ClassInfo a call lands in, or None.

        Handles: bare names (local or imported functions/classes),
        ``self.method(...)`` including inherited methods,
        ``module.symbol(...)`` through module imports, and
        ``ImportedClass.method(...)`` static-style calls.
        """
        target = call_node.func
        module = func_info.module
        if isinstance(target, ast.Name):
            resolved = self.symbols.resolve_name(module, target.id)
            # A bare name can resolve to a module (an imported submodule
            # shadowed by a local); a module is not callable project code.
            if isinstance(resolved, ModuleInfo):
                return None
            return resolved
        if not isinstance(target, ast.Attribute):
            return None
        base = target.value
        if isinstance(base, ast.Name):
            if base.id == "self" and func_info.class_name is not None:
                own = self.symbols.class_of_function(func_info)
                if own is not None:
                    return self.symbols.lookup_method(own, target.attr)
                return None
            resolved_base = self.symbols.resolve_name(module, base.id)
            if isinstance(resolved_base, ModuleInfo):
                return resolved_base.functions.get(
                    target.attr
                ) or resolved_base.classes.get(target.attr)
            if isinstance(resolved_base, ClassInfo):
                return self.symbols.lookup_method(resolved_base, target.attr)
        return None

    # ------------------------------------------------------------------

    def callers_of(self, qualname):
        """Direct callers, sorted."""
        return sorted(self.reverse.get(qualname, ()))

    def transitive_callers(self, qualname):
        """Every function that can reach ``qualname``, sorted."""
        seen = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            for caller in self.reverse.get(current, ()):
                if caller not in seen:
                    seen.add(caller)
                    stack.append(caller)
        return sorted(seen)

    def reaching_classes(self, qualname):
        """Qualnames of classes whose methods can reach ``qualname``.

        The direct owner of a method counts; module-level functions
        contribute their callers' classes only. This is the "context"
        notion SHARD001 counts: two distinct reaching classes means two
        components can interleave on whatever ``qualname`` touches.
        """
        classes = set()
        for caller in [qualname] + self.transitive_callers(qualname):
            info = self._function_by_qualname(caller)
            if info is not None and info.class_name is not None:
                owner = self.symbols.class_of_function(info)
                if owner is not None:
                    classes.add(owner.qualname)
        return sorted(classes)

    def _function_by_qualname(self, qualname):
        parent, _, leaf = qualname.rpartition(".")
        resolved = self.symbols.resolve_dotted(parent)
        if isinstance(resolved, ClassInfo):
            return resolved.methods.get(leaf)
        if isinstance(resolved, ModuleInfo):
            return resolved.functions.get(leaf)
        return None
