"""The lint engine: file collection, parsing, rule dispatch, filtering.

The engine is deliberately free of wall-clock state: given the same
tree, the same configuration, and the same baseline, two runs produce
byte-identical reports (a property :mod:`tests.analysis` asserts),
mirroring the replay guarantee the linted code itself must uphold.
"""

import ast
import os

from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import CallGraph, SymbolTable
from repro.analysis.dataflow import ProjectDataflow
from repro.analysis.findings import Finding, assign_fingerprints
from repro.analysis.registry import all_rules
from repro.analysis.statemachine import DEFAULT_STATE_MACHINES, extract_machines
from repro.analysis.suppress import is_suppressed, parse_suppressions


class ProtocolSpec:
    """One exhaustiveness obligation: a messages module and its dispatchers.

    ``messages`` and each dispatcher are path *suffixes* (posix style);
    the engine matches them against linted files, and resolves
    dispatcher files that were not part of the lint run from disk,
    relative to the matched messages module.
    """

    __slots__ = ("messages", "dispatchers")

    def __init__(self, messages, dispatchers):
        self.messages = messages
        self.dispatchers = tuple(dispatchers)

    def __repr__(self):
        return "ProtocolSpec({} -> {})".format(self.messages, list(self.dispatchers))


DEFAULT_PROTOCOLS = (
    ProtocolSpec(
        "repro/gcs/messages.py",
        ["repro/gcs/daemon.py", "repro/core/control.py"],
    ),
    ProtocolSpec(
        "repro/core/messages.py",
        ["repro/core/daemon.py", "repro/core/control.py"],
    ),
)

# The simulated substrate: everything here must stay single-threaded
# and virtual-time, so SIM001 forbids real concurrency and sockets.
DEFAULT_SIM_RESTRICTED = (
    "repro/core",
    "repro/gcs",
    "repro/sim",
    "repro/net",
    "repro/obs",
    "repro/flow",
    "repro/bench",
)

# Files allowed to read real clocks / own the randomness primitives.
# The bench runner's whole job is timing pure simulation workloads, so
# it joins the scheduler in the wall-clock exemption; the workloads
# themselves (repro/bench/suite.py) stay virtual-time only.
DEFAULT_WALLCLOCK_EXEMPT = ("repro/sim/scheduler.py", "repro/bench/runner.py")
DEFAULT_RANDOM_EXEMPT = ("repro/sim/rng.py",)

# Where SHARD001 forbids cross-context shared mutable state: the sim
# substrate plus the campaign runner (whose worker pool is exactly the
# multi-core template ROADMAP item 5 generalizes).
DEFAULT_SHARD_SCOPE = DEFAULT_SIM_RESTRICTED + ("repro/check",)

# Edge infrastructure inside the substrate tree: modules that sit on
# the process boundary by design and therefore carry a *scoped*
# SIM001/SHARD001 allowance, each with its reason on record. Scoped
# means the whole allowance names one file; everything else under
# repro/sim stays fully restricted, so a stray `import threading` two
# files over still fails the lint gate.
DEFAULT_SIM_EDGE = (
    (
        "repro/sim/shard/pool.py",
        "sharded-kernel worker pool: forks whole interpreter processes "
        "around per-shard Simulations and exchanges only picklable "
        "envelopes/artifacts over pipes; no simulated state crosses the "
        "boundary (DESIGN.md §10)",
    ),
)

# Attribute names PROTO003 treats as protocol-owned: only the owning
# object's declared transition code may write them.
DEFAULT_PROTECTED_FIELDS = (
    "delivered_aru",
    "epoch",
    "highest_counter",
    "recv_aru",
    "state",
    "view",
    "view_id",
)


class LintConfig:
    """Per-run knobs; defaults encode this repository's layout."""

    __slots__ = (
        "protocols",
        "sim_restricted",
        "wallclock_exempt",
        "random_exempt",
        "shard_scope",
        "sim_edge",
        "protected_fields",
        "state_machines",
    )

    def __init__(
        self,
        protocols=DEFAULT_PROTOCOLS,
        sim_restricted=DEFAULT_SIM_RESTRICTED,
        wallclock_exempt=DEFAULT_WALLCLOCK_EXEMPT,
        random_exempt=DEFAULT_RANDOM_EXEMPT,
        shard_scope=None,
        sim_edge=DEFAULT_SIM_EDGE,
        protected_fields=DEFAULT_PROTECTED_FIELDS,
        state_machines=DEFAULT_STATE_MACHINES,
    ):
        self.protocols = tuple(protocols)
        self.sim_restricted = tuple(sim_restricted)
        self.wallclock_exempt = tuple(wallclock_exempt)
        self.random_exempt = tuple(random_exempt)
        # shard scope defaults to tracking whatever sim_restricted says,
        # so fixture configs that point sim_restricted at a tmp tree get
        # SHARD001 there too without repeating themselves.
        if shard_scope is None:
            if tuple(sim_restricted) == DEFAULT_SIM_RESTRICTED:
                shard_scope = DEFAULT_SHARD_SCOPE
            else:
                shard_scope = tuple(sim_restricted)
        self.shard_scope = tuple(shard_scope)
        self.sim_edge = tuple((suffix, reason) for suffix, reason in sim_edge)
        self.protected_fields = tuple(protected_fields)
        self.state_machines = tuple(state_machines)

    def edge_reason(self, path):
        """The recorded allowance reason for an edge module, or None.

        SIM001 and SHARD001 consult this before scanning: a path listed
        in ``sim_edge`` is process-boundary infrastructure whose real
        concurrency is the point, not a leak.
        """
        for suffix, reason in self.sim_edge:
            if path_matches(path, suffix):
                return reason
        return None


def path_matches(path, suffix):
    """Posix suffix match on whole path segments."""
    path = path.replace(os.sep, "/")
    suffix = suffix.rstrip("/")
    return path == suffix or path.endswith("/" + suffix)


def path_in_dir(path, prefix):
    """True when ``path`` lies under a directory ending in ``prefix``."""
    path = path.replace(os.sep, "/")
    prefix = prefix.strip("/")
    return path.startswith(prefix + "/") or "/{}/".format(prefix) in path


class ModuleContext:
    """One parsed source file plus its suppression table."""

    __slots__ = ("path", "source", "lines", "tree", "suppressions")

    def __init__(self, path, source, tree):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.suppressions = parse_suppressions(self.lines)

    def line_text(self, number):
        """The 1-based source line, or '' when out of range."""
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""

    def finding(self, rule, node_or_line, message):
        """Build a Finding anchored at an AST node or a line number."""
        if isinstance(node_or_line, int):
            line, col = node_or_line, 0
        else:
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0)
        return Finding(rule, self.path, line, col, message, self.line_text(line))


class ProjectContext:
    """All modules of one run, for cross-file rules.

    The flow analyses (symbol table, call graph, dataflow summaries,
    state-machine extraction) are built lazily on first use and shared
    by every rule in the run — each is a pure function of the parsed
    module set, so caching cannot leak state between runs.
    """

    __slots__ = ("modules", "config", "_symbols", "_callgraph", "_dataflow", "_machines")

    def __init__(self, modules, config=None):
        self.modules = list(modules)
        self.config = config or LintConfig()
        self._symbols = None
        self._callgraph = None
        self._dataflow = None
        self._machines = None

    def find(self, suffix):
        """The first module whose path matches ``suffix``, or None."""
        for module in self.modules:
            if path_matches(module.path, suffix):
                return module
        return None

    def symbols(self):
        """The project-wide :class:`~repro.analysis.callgraph.SymbolTable`."""
        if self._symbols is None:
            self._symbols = SymbolTable(self.modules)
        return self._symbols

    def callgraph(self):
        """The project-wide :class:`~repro.analysis.callgraph.CallGraph`."""
        if self._callgraph is None:
            self._callgraph = CallGraph(self.symbols())
        return self._callgraph

    def dataflow(self):
        """Per-function mutation/escape summaries with escape closure."""
        if self._dataflow is None:
            self._dataflow = ProjectDataflow(self.symbols(), self.callgraph())
        return self._dataflow

    def machines(self):
        """The extracted protocol state machines of this run."""
        if self._machines is None:
            self._machines = extract_machines(self, self.config)
        return self._machines


class LintResult:
    """The outcome of one lint run."""

    __slots__ = (
        "findings",
        "suppressed",
        "baselined",
        "files",
        "rules",
        "parse_errors",
    )

    def __init__(self, findings, suppressed, baselined, files, rules, parse_errors):
        self.findings = findings
        self.suppressed = suppressed
        self.baselined = baselined
        self.files = files
        self.rules = rules
        self.parse_errors = parse_errors

    @property
    def ok(self):
        return not self.findings and not self.parse_errors


def collect_files(paths):
    """Expand files/directories into a sorted, de-duplicated .py list.

    Paths under the current working directory are relativized, so the
    report (and every baseline fingerprint) reads the same whether the
    target was spelled absolutely or relatively.
    """
    found = []
    for path in paths:
        path = str(path)
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            found.append(path)
    cwd = os.getcwd()
    normalized = []
    for path in found:
        path = os.path.normpath(os.path.abspath(path))
        if path.startswith(cwd + os.sep):
            path = os.path.relpath(path, cwd)
        normalized.append(path)
    return [p.replace(os.sep, "/") for p in sorted(set(normalized))]


def load_project(paths, config=None):
    """Parse ``paths`` into a :class:`ProjectContext` without linting.

    Unparseable files are silently skipped — callers that need the
    syntax errors reported run the full :class:`Linter` instead. This
    is the entry point for artifact generation (``repro lint
    --state-machines``) where only the parsed tree matters.
    """
    config = config or LintConfig()
    modules = []
    for path in collect_files(paths):
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        modules.append(ModuleContext(path, source, tree))
    return ProjectContext(modules, config)


class Linter:
    """Run every registered rule over a set of files."""

    def __init__(self, config=None, rules=None):
        self.config = config or LintConfig()
        self.rules = list(rules) if rules is not None else all_rules()

    def run(self, paths, baseline=None):
        """Lint ``paths``; returns a :class:`LintResult`."""
        baseline = baseline or Baseline()
        modules = []
        parse_errors = []
        files = collect_files(paths)
        for path in files:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                parse_errors.append(
                    Finding(
                        "PARSE",
                        path,
                        exc.lineno or 1,
                        (exc.offset or 1) - 1,
                        "syntax error: {}".format(exc.msg),
                    )
                )
                continue
            modules.append(ModuleContext(path, source, tree))

        raw = []
        project = ProjectContext(modules, self.config)
        for rule in self.rules:
            for module in modules:
                raw.extend(rule.check_module(module, self.config))
            raw.extend(rule.check_project(project, self.config))

        by_path = {module.path: module for module in modules}
        unsuppressed = []
        suppressed = []
        for finding in raw:
            module = by_path.get(finding.path)
            if module is not None and is_suppressed(
                module.suppressions, finding.line, finding.rule
            ):
                suppressed.append(finding)
            else:
                unsuppressed.append(finding)

        new = []
        baselined = []
        for finding, fp in assign_fingerprints(unsuppressed):
            if fp in baseline:
                baselined.append(finding)
            else:
                new.append(finding)

        new.sort(key=Finding.sort_key)
        suppressed.sort(key=Finding.sort_key)
        baselined.sort(key=Finding.sort_key)
        parse_errors.sort(key=Finding.sort_key)
        return LintResult(
            new,
            suppressed,
            baselined,
            files,
            [rule.code for rule in self.rules],
            parse_errors,
        )
