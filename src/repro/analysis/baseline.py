"""The committed findings baseline.

A baseline freezes the set of findings that existed when a rule was
introduced, so tightening the linter never blocks CI on pre-existing
code: only *new* findings fail the run. The file is plain sorted JSON
(stable under re-generation) and lives at the repo root as
``lint-baseline.json``.
"""

import json
import os

BASELINE_FORMAT = "repro-lint-baseline/1"


class Baseline:
    """A set of fingerprinted findings to ignore."""

    def __init__(self, entries=None):
        # fingerprint -> descriptive entry (rule/path/snippet, for humans)
        self.entries = dict(entries or {})

    def __contains__(self, fp):
        return fp in self.entries

    def __len__(self):
        return len(self.entries)

    @classmethod
    def load(cls, path):
        """Load a baseline file; a missing file is an empty baseline."""
        if path is None or not os.path.exists(str(path)):
            return cls()
        with open(str(path)) as handle:
            data = json.load(handle)
        if data.get("format") != BASELINE_FORMAT:
            raise ValueError(
                "unrecognised baseline format {!r} in {}".format(
                    data.get("format"), path
                )
            )
        return cls(data.get("findings", {}))

    @classmethod
    def from_findings(cls, fingerprinted):
        """Build a baseline covering ``[(finding, fingerprint)]``."""
        entries = {}
        for finding, fp in fingerprinted:
            entries[fp] = {
                "rule": finding.rule,
                "path": finding.path,
                "snippet": finding.snippet.strip(),
            }
        return cls(entries)

    def save(self, path):
        """Write deterministically (sorted keys, fixed layout)."""
        data = {"format": BASELINE_FORMAT, "findings": self.entries}
        with open(str(path), "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
