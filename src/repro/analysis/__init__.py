"""Static analysis for determinism and protocol invariants.

The whole reproduction rests on byte-identical deterministic replay
(:mod:`repro.check`), so nondeterminism sources — wall clocks, unseeded
randomness, unordered iteration that escapes into traces or messages,
id()/hash() tie-breaks, real threads — must be caught at lint time,
not after thousands of fault-schedule trials. ``repro lint`` runs the
rule set in :mod:`repro.analysis.rules` over the tree, honouring
per-line ``# repro: allow <rule>`` suppressions and a committed
baseline file so pre-existing findings never block CI.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.engine import (
    LintConfig,
    Linter,
    LintResult,
    ProtocolSpec,
    load_project,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules, get_rule
from repro.analysis.statemachine import render_state_machines

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "Linter",
    "ProtocolSpec",
    "all_rules",
    "get_rule",
    "load_project",
    "render_state_machines",
]
