"""Per-line suppression comments.

A finding on a line carrying ``# repro: allow <rule>[,<rule>...]`` is
suppressed (reported in the summary but not counted against the exit
code). ``# repro: allow *`` suppresses every rule on that line, and a
justification may follow after ``--``::

    # repro: allow SHARD001 -- read-only per-worker params

The comment documents an *acknowledged* exception — e.g. the campaign
runner's wall-clock elapsed-time report, which never feeds a verdict.
"""

import re

_ALLOW = re.compile(r"#\s*repro:\s*allow\s+([\w*,\s-]+)", re.IGNORECASE)
_NOT_WIRE = re.compile(r"#\s*repro:\s*not-wire\b", re.IGNORECASE)


def parse_suppressions(lines):
    """Map 1-based line number -> set of lowercased allowed rule codes."""
    suppressions = {}
    for number, text in enumerate(lines, start=1):
        match = _ALLOW.search(text)
        if match is None:
            continue
        # Everything after `--` is the human justification, not a code.
        allowed = match.group(1).split("--", 1)[0]
        codes = {
            code.strip().lower()
            for code in allowed.split(",")
            if code.strip()
        }
        if codes:
            suppressions[number] = codes
    return suppressions


def is_suppressed(suppressions, line, rule):
    """True when ``rule`` is allowed on ``line``."""
    codes = suppressions.get(line)
    if not codes:
        return False
    return "*" in codes or rule.lower() in codes


def is_not_wire(line_text):
    """True when a class-def line opts out of PROTO001 (client-facing)."""
    return _NOT_WIRE.search(line_text) is not None
