"""Command-line interface: run the paper's experiments from a shell.

    python -m repro table1
    python -m repro figure5 --sizes 2 6 12 --trials 3 --chart
    python -m repro graceful --trials 10
    python -m repro router --rip-interval 30
    python -m repro baselines
    python -m repro tuning
    python -m repro check --trials 32 --workers 4
    python -m repro flow --users 1000000 --fault nic_down
    python -m repro observe --fault crash --format jsonl
    python -m repro bench --quick
    python -m repro lint src/repro --format json
    python -m repro all

Each experiment subcommand prints the paper-style table(s) produced by
the corresponding experiment class in :mod:`repro.experiments`;
``check`` runs a :mod:`repro.check` fault-schedule campaign (or
replays a saved failure artifact) and exits nonzero on violations.
"""

import argparse
import json
import sys

from repro.analysis import (
    Baseline,
    LintConfig,
    Linter,
    ProtocolSpec,
    all_rules,
    load_project,
    render_state_machines,
)
from repro.analysis.report import render_json, render_text
from repro.check.campaign import run_campaign
from repro.check.fixtures import FIXTURES
from repro.check.replay import replay
from repro.experiments.availability import AvailabilityExperiment
from repro.experiments.baselines_experiment import BaselineComparison
from repro.experiments.figure5 import Figure5Experiment
from repro.experiments.graceful import GracefulLeaveExperiment
from repro.experiments.load import LoadedClusterExperiment
from repro.experiments.router_experiment import RouterFailoverExperiment
from repro.experiments.table1 import Table1Experiment
from repro.experiments.tuning import FalsePositiveExperiment, SensitivityExperiment
from repro.obs.observe import FAULT_MODES


def build_parser():
    """The argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'N-Way Fail-Over Infrastructure "
        "for Reliable Servers and Routers' (DSN 2003).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="Table 1 and the notification windows")
    table1.add_argument("--trials", type=int, default=5)
    table1.add_argument("--servers", type=int, default=4)

    figure5 = sub.add_parser("figure5", help="Figure 5 cluster-size sweep")
    figure5.add_argument("--sizes", type=int, nargs="+", default=[2, 4, 6, 8, 10, 12])
    figure5.add_argument("--trials", type=int, default=3)
    figure5.add_argument("--vips", type=int, default=10)
    figure5.add_argument("--chart", action="store_true", help="also print an ASCII chart")

    graceful = sub.add_parser("graceful", help="voluntary-leave interruption")
    graceful.add_argument("--trials", type=int, default=10)
    graceful.add_argument("--servers", type=int, default=4)

    router = sub.add_parser("router", help="virtual-router fail-over (section 5.2)")
    router.add_argument("--trials", type=int, default=2)
    router.add_argument("--rip-interval", type=float, default=30.0)

    sub.add_parser("baselines", help="VRRP / HSRP / Fake comparison (section 7)")

    tuning = sub.add_parser("tuning", help="false positives + sensitivity sweeps")
    tuning.add_argument("--duration", type=float, default=120.0)
    tuning.add_argument("--trials", type=int, default=2)

    load = sub.add_parser("load", help="daemon priority on loaded machines")
    load.add_argument("--duration", type=float, default=120.0)
    load.add_argument("--trials", type=int, default=2)

    availability = sub.add_parser(
        "availability", help="pool-wide availability under faults"
    )
    availability.add_argument("--window", type=float, default=120.0)
    availability.add_argument("--faults", type=int, default=1)
    availability.add_argument("--trials", type=int, default=2)

    check = sub.add_parser(
        "check", help="fault-schedule exploration campaign (repro.check)"
    )
    check.add_argument("--trials", type=int, default=16)
    check.add_argument("--workers", type=int, default=1)
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--servers", type=int, default=4)
    check.add_argument("--vips", type=int, default=8)
    check.add_argument("--horizon", type=float, default=40.0)
    check.add_argument("--events", type=int, default=8)
    check.add_argument("--fixture", default="standard", choices=sorted(FIXTURES))
    check.add_argument(
        "--gray", action="store_true",
        help="gray-failure campaign: asymmetric partitions, burst loss, "
        "slow hosts, clock skew and wedged daemons against the hardened "
        "cluster (K-miss detection, ARP retries, supervisors)",
    )
    check.add_argument(
        "--corrupt", action="store_true",
        help="state-corruption campaign: arbitrary mutations of VIP "
        "tables, membership views, ordering counters and epochs mixed "
        "with gray faults, against the self-stabilizing cluster "
        "(periodic invariant audits on top of the gray hardening)",
    )
    check.add_argument(
        "--artifacts", default="check-artifacts", metavar="DIR",
        help="directory for shrunk failure artifacts",
    )
    check.add_argument("--no-shrink", action="store_true")
    check.add_argument(
        "--replay", default=None, metavar="ARTIFACT",
        help="replay a saved artifact instead of running a campaign",
    )
    check.add_argument(
        "--repeat", type=int, default=1, help="replay the artifact N times"
    )
    check.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="serial-vs-sharded parity trial instead of a campaign: run one "
        "n256 scale scenario on the serial kernel and again partitioned "
        "across N shard worker processes (pair with --workers N), write "
        "both merged artifacts into --artifacts, and exit nonzero unless "
        "they are byte-identical",
    )

    flow = sub.add_parser(
        "flow", help="flow-level fail-over run: requests lost at 10^5-10^7 users"
    )
    flow.add_argument("--seed", type=int, default=7)
    flow.add_argument("--servers", type=int, default=3)
    flow.add_argument("--vips", type=int, default=10)
    flow.add_argument(
        "--users", type=int, default=1_000_000,
        help="aggregate client population spread across the VIPs",
    )
    flow.add_argument(
        "--rate", type=float, default=1.0, help="requests/second per user"
    )
    flow.add_argument(
        "--tick", type=float, default=0.05, help="flow engine tick (sim seconds)"
    )
    flow.add_argument("--fault", default="nic_down", choices=("nic_down", "crash", "shutdown"))
    flow.add_argument(
        "--observe", type=float, default=15.0,
        help="simulated seconds to run after the fault",
    )
    flow.add_argument(
        "--pure-python", action="store_true",
        help="force the pure-python tick backend (parity check)",
    )
    flow.add_argument("--format", choices=("text", "json"), default="text")

    observe = sub.add_parser(
        "observe", help="instrumented fail-over run: metric catalog + episodes"
    )
    observe.add_argument("--seed", type=int, default=7)
    observe.add_argument("--servers", type=int, default=3)
    observe.add_argument("--vips", type=int, default=6)
    observe.add_argument("--fault", default="crash", choices=FAULT_MODES)
    observe.add_argument(
        "--settle", type=float, default=10.0,
        help="simulated seconds to converge before the fault",
    )
    observe.add_argument(
        "--duration", type=float, default=10.0,
        help="simulated seconds to observe after the fault",
    )
    observe.add_argument("--format", choices=("text", "jsonl"), default="text")

    bench = sub.add_parser(
        "bench", help="hot-path micro-benchmarks with a recorded trajectory"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small CI-sized workloads instead of the full suite",
    )
    bench.add_argument(
        "--scale", action="store_true",
        help="the 256-1024-host scale-tier benches (separate trajectory mode)",
    )
    bench.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run only the serial/sharded n256 kernel pair (scale mode), "
        "with the sharded bench at N shard worker processes; the "
        "committed trajectory uses the default N=4",
    )
    bench.add_argument(
        "--output", default="BENCH_kernel.json", metavar="FILE",
        help="trajectory file to compare against and append to",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRACTION",
        help="fail when a bench median slows by more than this (default 0.25)",
    )
    bench.add_argument(
        "--repeat", type=int, default=None, metavar="N",
        help="repetitions per bench (default: 3 quick, 5 full)",
    )
    bench.add_argument(
        "--benches", default=None, metavar="NAME[,NAME...]",
        help="run only these benches (default: all)",
    )
    bench.add_argument(
        "--no-compare", action="store_true",
        help="skip the regression gate against the previous run",
    )
    bench.add_argument(
        "--no-write", action="store_true",
        help="do not append this run to the trajectory file",
    )
    bench.add_argument(
        "--list", action="store_true", dest="list_benches",
        help="print the bench names and exit",
    )

    lint = sub.add_parser(
        "lint", help="determinism & protocol-invariant static analysis"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--baseline", default="lint-baseline.json", metavar="FILE",
        help="baseline file of accepted pre-existing findings",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file (report everything)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to cover the current findings and exit 0",
    )
    lint.add_argument(
        "--protocol", action="append", default=None, metavar="MSGS:DISP[,DISP...]",
        help="override PROTO001 obligations (messages module suffix, colon, "
        "comma-separated dispatcher suffixes); repeatable",
    )
    lint.add_argument(
        "--sim-restrict", action="append", default=None, metavar="PREFIX",
        help="override the SIM001 restricted directory prefixes; repeatable",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    lint.add_argument(
        "--explain", metavar="CODE", default=None,
        help="print one rule's description, rationale, and example pair, then exit",
    )
    lint.add_argument(
        "--state-machines", action="store_true", dest="state_machines",
        help="emit the extracted protocol state machines as JSON and exit",
    )

    sub.add_parser("all", help="run every experiment in sequence")
    return parser


def _run_table1(args, out):
    experiment = Table1Experiment(trials=args.trials, cluster_size=args.servers)
    out(experiment.format())


def _run_figure5(args, out):
    experiment = Figure5Experiment(
        cluster_sizes=tuple(args.sizes), trials=args.trials, n_vips=args.vips
    )
    series = experiment.run()
    out(experiment.format(series))
    if args.chart:
        out("")
        out(experiment.format_chart(series))


def _run_graceful(args, out):
    experiment = GracefulLeaveExperiment(trials=args.trials, cluster_size=args.servers)
    out(experiment.format())


def _run_router(args, out):
    experiment = RouterFailoverExperiment(
        trials=args.trials, rip_interval=args.rip_interval
    )
    out(experiment.format())


def _run_baselines(args, out):
    out(BaselineComparison(trials=3).format())


def _run_tuning(args, out):
    out(FalsePositiveExperiment(duration=args.duration, trials=args.trials).format())
    out("")
    out(SensitivityExperiment(trials=args.trials).format())


def _run_load(args, out):
    out(LoadedClusterExperiment(duration=args.duration, trials=args.trials).format())


def _run_availability(args, out):
    experiment = AvailabilityExperiment(window=args.window, faults=args.faults)
    out(experiment.format(trials=args.trials))


def _run_shard_parity(args, out):
    import os

    from repro.check.scaletrial import make_shard_spec, run_shard_parity_trial
    from repro.sim.shard.merge import artifact_bytes

    spec = make_shard_spec(args.seed, shards=args.shards, workers=args.workers)
    out(
        "shard parity: n{} scale scenario, serial vs {} shards "
        "({} workers) ...".format(spec["n_hosts"], spec["shards"], spec["workers"])
    )
    result = run_shard_parity_trial(spec)
    os.makedirs(args.artifacts, exist_ok=True)
    for tag in ("serial", "sharded"):
        path = os.path.join(args.artifacts, "shard-parity-{}.json".format(tag))
        with open(path, "wb") as handle:
            handle.write(artifact_bytes(result["{}_artifact".format(tag)]))
            handle.write(b"\n")
        out("  wrote {}".format(path))
    out(
        "  verdict={verdict} epochs={epochs} events={events_fired} "
        "serial={serial_wall_s}s sharded={sharded_wall_s}s "
        "speedup=x{speedup}".format(**result)
    )
    return 0 if result["verdict"] == "pass" else 1


def _run_check(args, out):
    if args.shards is not None:
        return _run_shard_parity(args, out)
    if args.replay is not None:
        code = 0
        for _ in range(max(args.repeat, 1)):
            report = replay(args.replay)
            out(report.format())
            if not report.match:
                code = 1
        return code
    report = run_campaign(
        base_seed=args.seed,
        trials=args.trials,
        workers=args.workers,
        n_servers=args.servers,
        n_vips=args.vips,
        horizon=args.horizon,
        events_per_trial=args.events,
        fixture=args.fixture,
        shrink=not args.no_shrink,
        artifacts_dir=args.artifacts,
        gray=args.gray,
        corrupt=args.corrupt,
    )
    out(report.format())
    return 0 if report.passed else 1


def _run_flow(args, out):
    from repro.apps.webcluster import WebClusterScenario
    from repro.gcs.config import SpreadConfig
    from repro.obs.episodes import extract_episodes, first_complete_episode

    scenario = WebClusterScenario(
        seed=args.seed,
        n_servers=args.servers,
        n_vips=args.vips,
        spread_config=SpreadConfig.tuned(),
        flow_users=args.users,
        flow_rate=args.rate,
        flow_tick=args.tick,
        flow_use_numpy=False if args.pure_python else None,
    )
    scenario.start()
    scenario.start_probe()
    if not scenario.run_until_stable():
        out("cluster failed to stabilize")
        return 1
    scenario.flow_engine.reset_counters()
    fault_time = scenario.sim.now
    victim = scenario.kill_owner_of(scenario.vips[0], mode=args.fault)
    scenario.sim.run_for(args.observe)
    episode = first_complete_episode(
        extract_episodes(scenario.sim.trace.records), after=fault_time
    )
    totals = scenario.flow_engine.totals()
    payload = {
        "backend": "numpy" if scenario.flow_engine.use_numpy else "python",
        "fault": args.fault,
        "victim": victim.host.name,
        "flow": totals,
        "probe_interruption": scenario.probe.failover_interruption(after=fault_time),
        "episode": episode.to_dict() if episode is not None else None,
    }
    if args.format == "json":
        out(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    out("flow fail-over: {} users @ {}/s across {} VIPs ({} backend)".format(
        totals["users"], args.rate, args.vips, payload["backend"]
    ))
    out("  fault: {} against {}".format(args.fault, victim.host.name))
    out("  offered {}  served {}  lost {}".format(
        totals["offered"], totals["served"], totals["lost"]
    ))
    for reason, count in totals["lost_by_reason"].items():
        out("    lost[{}] = {}".format(reason, count))
    if payload["probe_interruption"] is not None:
        out("  probe interruption: {:.4f}s".format(payload["probe_interruption"]))
    if episode is not None:
        out("  episode requests_lost: {}  goodput_pct: {}".format(
            episode.requests_lost,
            "n/a" if episode.goodput_pct is None else round(episode.goodput_pct, 3),
        ))
    return 0


def _run_observe(args, out):
    from repro.obs.dashboard import jsonl_observation, render_observation
    from repro.obs.observe import run_observation

    result = run_observation(
        seed=args.seed,
        n_servers=args.servers,
        n_vips=args.vips,
        fault=args.fault,
        settle=args.settle,
        observe_for=args.duration,
    )
    if args.format == "jsonl":
        out(jsonl_observation(result).rstrip("\n"))
    else:
        out(render_observation(result).rstrip("\n"))
    return 0


def _run_bench(args, out):
    from repro.bench import (
        bench_names,
        compare_runs,
        load_trajectory,
        run_suite,
        save_trajectory,
    )

    if args.list_benches:
        for name in bench_names():
            out(name)
        return 0
    if args.quick and args.scale:
        out("--quick and --scale are mutually exclusive")
        return 2
    mode = "scale" if args.scale else ("quick" if args.quick else "full")
    names = None
    if args.benches:
        names = [name for name in args.benches.split(",") if name]
    overrides = None
    if args.shards is not None:
        if args.quick:
            out("--quick and --shards are mutually exclusive")
            return 2
        mode = "scale"
        if names is None:
            names = ["kernel_serial_n256", "kernel_sharded_n256"]
        overrides = {
            "kernel_sharded_n256": {"shards": args.shards, "workers": args.shards}
        }
    current = run_suite(
        mode=mode, names=names, repeats=args.repeat, progress=out,
        overrides=overrides,
    )
    out(current.format())
    runs = load_trajectory(args.output)
    code = 0
    if not args.no_compare:
        comparison = compare_runs(runs, current, threshold=args.threshold)
        out(comparison.format())
        if not comparison.ok:
            out(
                "bench regression(s): {}".format(", ".join(comparison.regressions))
            )
            code = 1
    if not args.no_write:
        save_trajectory(args.output, runs + [current])
        out("trajectory appended to {}".format(args.output))
    return code


def _explain_rule(code, out):
    wanted = code.upper()
    rule = next((r for r in all_rules() if r.code == wanted), None)
    if rule is None:
        out(
            "unknown rule {!r}; `repro lint --list-rules` prints the "
            "catalogue".format(code)
        )
        return 1
    out("{}  {}".format(rule.code, rule.name))
    out("  {}".format(rule.description))
    if rule.rationale:
        out("")
        for line in rule.rationale.strip("\n").splitlines():
            out("  {}".format(line).rstrip())
    for title, example in (("bad", rule.example_bad), ("good", rule.example_good)):
        if not example:
            continue
        out("")
        out("  {}:".format(title))
        for line in example.strip("\n").splitlines():
            out("    {}".format(line).rstrip())
    return 0


def _run_lint(args, out):
    if args.list_rules:
        for rule in all_rules():
            out("{}  {}: {}".format(rule.code, rule.name, rule.description))
        return 0
    if args.explain is not None:
        return _explain_rule(args.explain, out)
    overrides = {}
    if args.protocol is not None:
        protocols = []
        for entry in args.protocol:
            messages, _, dispatchers = entry.partition(":")
            if not messages or not dispatchers:
                raise SystemExit(
                    "--protocol expects MESSAGES:DISPATCHER[,DISPATCHER...], "
                    "got {!r}".format(entry)
                )
            protocols.append(
                ProtocolSpec(messages, [d for d in dispatchers.split(",") if d])
            )
        overrides["protocols"] = protocols
    if args.sim_restrict is not None:
        overrides["sim_restricted"] = args.sim_restrict
    linter = Linter(LintConfig(**overrides))
    if args.state_machines:
        project = load_project(args.paths, linter.config)
        out(
            json.dumps(
                render_state_machines(project, linter.config),
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    if args.update_baseline:
        from repro.analysis.findings import assign_fingerprints

        result = linter.run(args.paths, baseline=Baseline())
        Baseline.from_findings(assign_fingerprints(result.findings)).save(
            args.baseline
        )
        out(
            "baseline updated: {} finding(s) recorded in {}".format(
                len(result.findings), args.baseline
            )
        )
        return 0
    result = linter.run(args.paths, baseline=baseline)
    if args.format == "json":
        out(render_json(result).rstrip("\n"))
    else:
        out(render_text(result))
    return 0 if result.ok else 1


def main(argv=None, out=print):
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "table1": _run_table1,
        "figure5": _run_figure5,
        "graceful": _run_graceful,
        "router": _run_router,
        "baselines": _run_baselines,
        "tuning": _run_tuning,
        "load": _run_load,
        "availability": _run_availability,
        "check": _run_check,
        "flow": _run_flow,
        "observe": _run_observe,
        "bench": _run_bench,
        "lint": _run_lint,
    }
    if args.command == "all":
        defaults = build_parser()
        for command in (
            "table1", "figure5", "graceful", "router", "baselines", "tuning",
            "load", "availability",
        ):
            out("=" * 72)
            handlers[command](defaults.parse_args([command]), out)
            out("")
        return 0
    code = handlers[args.command](args, out)
    return int(code or 0)


if __name__ == "__main__":
    sys.exit(main())
