"""Command-line interface: run the paper's experiments from a shell.

    python -m repro table1
    python -m repro figure5 --sizes 2 6 12 --trials 3 --chart
    python -m repro graceful --trials 10
    python -m repro router --rip-interval 30
    python -m repro baselines
    python -m repro tuning
    python -m repro all

Each subcommand prints the paper-style table(s) produced by the
corresponding experiment class in :mod:`repro.experiments`.
"""

import argparse
import sys

from repro.experiments.availability import AvailabilityExperiment
from repro.experiments.baselines_experiment import BaselineComparison
from repro.experiments.figure5 import Figure5Experiment
from repro.experiments.graceful import GracefulLeaveExperiment
from repro.experiments.load import LoadedClusterExperiment
from repro.experiments.router_experiment import RouterFailoverExperiment
from repro.experiments.table1 import Table1Experiment
from repro.experiments.tuning import FalsePositiveExperiment, SensitivityExperiment


def build_parser():
    """The argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'N-Way Fail-Over Infrastructure "
        "for Reliable Servers and Routers' (DSN 2003).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="Table 1 and the notification windows")
    table1.add_argument("--trials", type=int, default=5)
    table1.add_argument("--servers", type=int, default=4)

    figure5 = sub.add_parser("figure5", help="Figure 5 cluster-size sweep")
    figure5.add_argument("--sizes", type=int, nargs="+", default=[2, 4, 6, 8, 10, 12])
    figure5.add_argument("--trials", type=int, default=3)
    figure5.add_argument("--vips", type=int, default=10)
    figure5.add_argument("--chart", action="store_true", help="also print an ASCII chart")

    graceful = sub.add_parser("graceful", help="voluntary-leave interruption")
    graceful.add_argument("--trials", type=int, default=10)
    graceful.add_argument("--servers", type=int, default=4)

    router = sub.add_parser("router", help="virtual-router fail-over (section 5.2)")
    router.add_argument("--trials", type=int, default=2)
    router.add_argument("--rip-interval", type=float, default=30.0)

    sub.add_parser("baselines", help="VRRP / HSRP / Fake comparison (section 7)")

    tuning = sub.add_parser("tuning", help="false positives + sensitivity sweeps")
    tuning.add_argument("--duration", type=float, default=120.0)
    tuning.add_argument("--trials", type=int, default=2)

    load = sub.add_parser("load", help="daemon priority on loaded machines")
    load.add_argument("--duration", type=float, default=120.0)
    load.add_argument("--trials", type=int, default=2)

    availability = sub.add_parser(
        "availability", help="pool-wide availability under faults"
    )
    availability.add_argument("--window", type=float, default=120.0)
    availability.add_argument("--faults", type=int, default=1)
    availability.add_argument("--trials", type=int, default=2)

    sub.add_parser("all", help="run every experiment in sequence")
    return parser


def _run_table1(args, out):
    experiment = Table1Experiment(trials=args.trials, cluster_size=args.servers)
    out(experiment.format())


def _run_figure5(args, out):
    experiment = Figure5Experiment(
        cluster_sizes=tuple(args.sizes), trials=args.trials, n_vips=args.vips
    )
    series = experiment.run()
    out(experiment.format(series))
    if args.chart:
        out("")
        out(experiment.format_chart(series))


def _run_graceful(args, out):
    experiment = GracefulLeaveExperiment(trials=args.trials, cluster_size=args.servers)
    out(experiment.format())


def _run_router(args, out):
    experiment = RouterFailoverExperiment(
        trials=args.trials, rip_interval=args.rip_interval
    )
    out(experiment.format())


def _run_baselines(args, out):
    out(BaselineComparison(trials=3).format())


def _run_tuning(args, out):
    out(FalsePositiveExperiment(duration=args.duration, trials=args.trials).format())
    out("")
    out(SensitivityExperiment(trials=args.trials).format())


def _run_load(args, out):
    out(LoadedClusterExperiment(duration=args.duration, trials=args.trials).format())


def _run_availability(args, out):
    experiment = AvailabilityExperiment(window=args.window, faults=args.faults)
    out(experiment.format(trials=args.trials))


def main(argv=None, out=print):
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "table1": _run_table1,
        "figure5": _run_figure5,
        "graceful": _run_graceful,
        "router": _run_router,
        "baselines": _run_baselines,
        "tuning": _run_tuning,
        "load": _run_load,
        "availability": _run_availability,
    }
    if args.command == "all":
        defaults = build_parser()
        for command in (
            "table1", "figure5", "graceful", "router", "baselines", "tuning",
            "load", "availability",
        ):
            out("=" * 72)
            handlers[command](defaults.parse_args([command]), out)
            out("")
        return 0
    handlers[args.command](args, out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
