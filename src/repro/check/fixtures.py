"""Daemon variants for campaigns, including deliberately planted bugs.

A fault-searching campaign that has never found a bug proves nothing —
it might simply be blind. The planted fixtures are known-broken daemon
variants the campaign *must* catch, shrink, and replay; they double as
regression tests for the check subsystem itself.
"""

from repro.core.daemon import WackamoleDaemon
from repro.core.state import RUN


class BrokenBalanceDaemon(WackamoleDaemon):
    """Planted bug: applying a BALANCE message never releases slots.

    The correct Change_IPs both acquires newly assigned addresses and
    releases surrendered ones (§3.4). This variant only acquires, so
    the first re-balance that *moves* a slot — typically right after a
    crashed or departed member rejoins with an empty allocation —
    leaves the old owner still bound: duplicate coverage, a Property 1
    violation the auditor must catch.
    """

    def _on_balance_msg(self, message):
        if self.machine.state != RUN:
            return
        if self.view is None or message.view_id != self.view.view_id:
            return
        self.machine.fire("BALANCE_MSG")
        for slot, owner in message.allocation.items():
            if slot in self.table.slots and (owner is None or owner in self.table.members):
                self.table.set_owner(slot, owner)
        for slot in self.table.slots:
            if self.table.owner(slot) == self.member_name:
                self.iface.acquire(slot)
        self.balances_applied += 1


FIXTURES = {
    "standard": WackamoleDaemon,
    "broken-balance": BrokenBalanceDaemon,
}


def daemon_class(name):
    """Resolve a fixture name to a daemon class."""
    try:
        return FIXTURES[name]
    except KeyError:
        raise ValueError(
            "unknown fixture {!r}; known: {}".format(name, sorted(FIXTURES))
        ) from None
