"""Delta-debugging shrinker for failing fault schedules.

Classic ddmin over the event list: repeatedly try to drop chunks of
events (coarse to fine, down to single events) and keep any reduction
that still reproduces *the same* failure — same verdict and same
violation kinds, per :func:`repro.check.trial.result_signature`. Every
candidate runs as a full deterministic trial with the original seed,
so the minimized schedule fails for the same reason, not merely some
reason.
"""

from repro.check.schedule import FaultSchedule
from repro.check.trial import result_signature, run_trial


def _with_events(spec, events):
    schedule = FaultSchedule.from_dict(spec["schedule"]).replace_events(events)
    candidate = dict(spec)
    candidate["schedule"] = schedule.to_dict()
    return candidate


def shrink_spec(spec, baseline=None, max_trials=80):
    """Minimize ``spec``'s schedule; returns (spec, result, trials_used).

    ``baseline`` is the known failing result for ``spec`` (recomputed
    when omitted). Raises ValueError if the spec does not fail. The
    returned spec's schedule is 1-minimal up to the trial budget: no
    single remaining event can be dropped without losing the failure.
    """
    if baseline is None:
        baseline = run_trial(spec)
    if baseline["verdict"] == "pass":
        raise ValueError("cannot shrink a passing spec")
    signature = result_signature(baseline)
    events = list(FaultSchedule.from_dict(spec["schedule"]).events)
    best_result = baseline
    trials_used = 0

    def reproduces(candidate_events):
        nonlocal trials_used, best_result
        trials_used += 1
        result = run_trial(_with_events(spec, candidate_events))
        if result_signature(result) == signature:
            best_result = result
            return True
        return False

    granularity = 2
    while len(events) >= 2 and trials_used < max_trials:
        chunk = max(1, len(events) // granularity)
        reduced = False
        start = 0
        while start < len(events) and trials_used < max_trials:
            complement = events[:start] + events[start + chunk:]
            if complement and reproduces(complement):
                events = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            start += chunk
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)

    return _with_events(spec, events), best_result, trials_used
