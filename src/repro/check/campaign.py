"""Campaign runner: many deterministic trials, optionally in parallel.

Each trial's randomness comes from ``RngRegistry(base_seed).fork(
"trial/<index>")`` — an independent derived seed, so trial *i* is the
same world whether it runs first, last, serially, or on any worker
process. Parallel fan-out uses ``concurrent.futures`` with the
``fork`` start method where available so workers inherit the parent's
interpreter state (including its hash seed) and verdicts stay
identical across serial and parallel modes.

Campaign fan-out keeps the workers warm: the campaign parameters are
shipped once per worker (pool initializer) and each submitted task is
a bare trial index — the worker reconstructs the spec from
``(base_seed, index)`` itself, since :func:`build_trial_spec` is a
pure function of the parameters. Chunked submission amortizes the
remaining IPC. The serial path builds specs through the exact same
function, which is what makes the serial/parallel verdict-identity
guarantee hold by construction.

Failures are shrunk with ddmin and archived as JSON artifacts that
:mod:`repro.check.replay` can re-run byte-identically.
"""

import json
import os
import time

from repro.check.schedule import generate_schedule
from repro.check.shrink import shrink_spec
from repro.check.trial import make_spec, run_trial
from repro.sim.rng import RngRegistry

ARTIFACT_FORMAT = "repro-check/1"


def campaign_params(
    base_seed=0,
    trials=16,
    n_servers=4,
    n_vips=8,
    horizon=40.0,
    events_per_trial=8,
    fixture="standard",
    **spec_overrides,
):
    """Normalize campaign keyword arguments into one plain dict.

    The dict is small, JSON-compatible, and crosses the process
    boundary once per worker; everything a trial needs is derived from
    it plus a trial index.
    """
    return {
        "base_seed": int(base_seed),
        "trials": int(trials),
        "n_servers": n_servers,
        "n_vips": n_vips,
        "horizon": horizon,
        "events_per_trial": events_per_trial,
        "fixture": fixture,
        "spec_overrides": dict(spec_overrides),
    }


def build_trial_spec(params, index):
    """The spec for trial ``index`` — a pure function of (params, index).

    Forking a fresh registry per index is identical to forking one
    shared registry repeatedly (forks depend only on the base seed and
    the salt), which is what lets workers rebuild specs locally from
    nothing but the campaign parameters and their assigned indices.
    """
    forked = RngRegistry(params["base_seed"]).fork("trial/{}".format(index))
    schedule = generate_schedule(
        forked.stream("schedule"),
        n_hosts=params["n_servers"],
        horizon=params["horizon"],
        n_events=params["events_per_trial"],
        gray=bool(params["spec_overrides"].get("gray", False)),
        corrupt=bool(params["spec_overrides"].get("corrupt", False)),
    )
    return make_spec(
        forked.seed,
        schedule,
        n_servers=params["n_servers"],
        n_vips=params["n_vips"],
        fixture=params["fixture"],
        **params["spec_overrides"],
    )


def build_specs(**kwargs):
    """Deterministic trial specs: one forked registry per trial."""
    params = campaign_params(**kwargs)
    return [build_trial_spec(params, index) for index in range(params["trials"])]


# Per-worker-process campaign parameters, installed once by the pool
# initializer so each task submission is just a trial index.
_WORKER_PARAMS = None


def _campaign_worker_init(params):
    # Deliberate per-worker-process state: the pool initializer installs
    # the campaign parameters exactly once per worker, and trials read
    # them immutably — the warm-pool design BENCH_kernel.json tracks.
    global _WORKER_PARAMS  # repro: allow SHARD001 -- read-only per-worker params installed once by the pool initializer
    _WORKER_PARAMS = params


def _campaign_worker_trial(index):
    return run_trial(build_trial_spec(_WORKER_PARAMS, index))


def _pool_context():
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def run_campaign_trials(params, workers=1):
    """Run one campaign's trials from compact parameters.

    ``params`` are the keyword arguments of :func:`build_specs` (or an
    already-normalized :func:`campaign_params` dict). This is the
    throughput-critical entry point benchmarked by ``repro bench``:
    parallel mode ships ``params`` once per warm worker and submits
    bare indices in chunks; verdicts are identical to the serial path
    for any ``workers``.
    """
    if "spec_overrides" not in params:
        params = campaign_params(**params)
    trials = params["trials"]
    if workers <= 1:
        return [run_trial(build_trial_spec(params, index)) for index in range(trials)]
    import concurrent.futures

    chunksize = max(1, trials // (workers * 4))
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=_campaign_worker_init,
        initargs=(params,),
    ) as pool:
        return list(
            pool.map(_campaign_worker_trial, range(trials), chunksize=chunksize)
        )


def run_specs(specs, workers=1):
    """Run explicit trial specs serially or across worker processes.

    Campaigns prefer :func:`run_campaign_trials` (workers rebuild
    specs from indices); this entry point remains for replaying or
    fanning out hand-built spec lists.
    """
    if workers <= 1:
        return [run_trial(spec) for spec in specs]
    import concurrent.futures

    chunksize = max(1, len(specs) // (workers * 4))
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, mp_context=_pool_context()
    ) as pool:
        return list(pool.map(run_trial, specs, chunksize=chunksize))


class CampaignReport:
    """Everything one campaign produced."""

    def __init__(self, specs, results, failures, artifacts, elapsed, workers):
        self.specs = specs
        self.results = results
        self.failures = failures  # [(spec, result, shrunk_spec, shrunk_result)]
        self.artifacts = artifacts  # paths written, aligned with failures
        self.elapsed = elapsed
        self.workers = workers

    @property
    def verdicts(self):
        return [result["verdict"] for result in self.results]

    @property
    def passed(self):
        return all(v == "pass" for v in self.verdicts)

    def format(self):
        lines = [
            "repro check: {} trials, {} worker(s), {:.2f}s wall".format(
                len(self.results), self.workers, self.elapsed
            )
        ]
        for spec, result in zip(self.specs, self.results):
            lines.append(
                "  seed={:<20d} events={:<2d} verdict={}".format(
                    spec["seed"], len(spec["schedule"]["events"]), result["verdict"]
                )
            )
        if not self.failures:
            lines.append("  all trials passed")
        for index, (spec, result, shrunk_spec, shrunk_result) in enumerate(
            self.failures
        ):
            lines.append(
                "  FAILURE seed={}: {} -> shrunk to {} event(s)".format(
                    spec["seed"],
                    result["verdict"],
                    len(shrunk_spec["schedule"]["events"]),
                )
            )
            for event in shrunk_spec["schedule"]["events"]:
                lines.append("    {}".format(event))
            if index < len(self.artifacts):
                lines.append("    artifact: {}".format(self.artifacts[index]))
        return "\n".join(lines)


def make_artifact(spec, result, original_spec=None, original_result=None):
    """A self-contained, replayable failure record."""
    return {
        "format": ARTIFACT_FORMAT,
        "spec": spec,
        "result": result,
        "original_events": len(
            (original_spec or spec)["schedule"]["events"]
        ),
        "original_verdict": (original_result or result)["verdict"],
    }


def run_campaign(
    base_seed=0,
    trials=16,
    workers=1,
    n_servers=4,
    n_vips=8,
    horizon=40.0,
    events_per_trial=8,
    fixture="standard",
    shrink=True,
    shrink_budget=80,
    artifacts_dir=None,
    **spec_overrides,
):
    """Generate, run, and post-process one campaign; returns a report."""
    params = campaign_params(
        base_seed=base_seed,
        trials=trials,
        n_servers=n_servers,
        n_vips=n_vips,
        horizon=horizon,
        events_per_trial=events_per_trial,
        fixture=fixture,
        **spec_overrides,
    )
    specs = [build_trial_spec(params, index) for index in range(params["trials"])]
    # Wall-clock is fine here: elapsed time is reported to the operator
    # only and never feeds a trial verdict or an artifact.
    started = time.perf_counter()  # repro: allow det001
    results = run_campaign_trials(params, workers=workers)
    elapsed = time.perf_counter() - started  # repro: allow det001

    failures = []
    artifacts = []
    for spec, result in zip(specs, results):
        if result["verdict"] == "pass":
            continue
        if shrink:
            shrunk_spec, shrunk_result, _ = shrink_spec(
                spec, baseline=result, max_trials=shrink_budget
            )
        else:
            shrunk_spec, shrunk_result = spec, result
        failures.append((spec, result, shrunk_spec, shrunk_result))
        if artifacts_dir is not None:
            os.makedirs(str(artifacts_dir), exist_ok=True)
            path = os.path.join(
                str(artifacts_dir), "check-seed{}.json".format(spec["seed"])
            )
            artifact = make_artifact(
                shrunk_spec, shrunk_result, original_spec=spec, original_result=result
            )
            with open(path, "w") as handle:
                json.dump(artifact, handle, indent=2, sort_keys=True)
            artifacts.append(path)
    return CampaignReport(specs, results, failures, artifacts, elapsed, workers)
