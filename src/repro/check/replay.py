"""Deterministic replay of saved failure artifacts.

An artifact embeds the exact trial spec (seed + schedule) and the
failure it produced. Replaying re-runs the spec and demands an
*identical* result — same verdict, same violation list, same trace
tail — which is the whole point of keeping trials pure functions of
their specs: a failure found by a campaign last week reproduces on a
developer's machine today, byte for byte.
"""

import json

from repro.check.campaign import ARTIFACT_FORMAT
from repro.check.trial import run_trial

# Result fields that must match byte-for-byte on replay. sim_time,
# counters, the per-trial metrics summary, the extracted fail-over
# episode records, the injector's fault log and the degraded-mode
# spans are all included: a divergence there means nondeterminism even
# if the violation happens to look the same.
_COMPARED_FIELDS = (
    "verdict",
    "sim_time",
    "violations",
    "violation_kinds",
    "trace_tail",
    "metrics",
    "episodes",
    "fault_log",
    "degraded",
    "flow",
)


def load_artifact(path):
    """Read and validate an artifact written by a campaign."""
    with open(str(path)) as handle:
        artifact = json.load(handle)
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            "not a repro-check artifact (format={!r})".format(artifact.get("format"))
        )
    return artifact


class ReplayReport:
    """Outcome of one replay: fresh result vs. the saved one."""

    def __init__(self, artifact, result):
        self.artifact = artifact
        self.result = result
        self.diffs = []
        saved = artifact["result"]
        for field in _COMPARED_FIELDS:
            if saved.get(field) != result.get(field):
                self.diffs.append(field)

    @property
    def match(self):
        return not self.diffs

    def format(self):
        saved = self.artifact["result"]
        lines = [
            "replay: saved verdict={} fresh verdict={}".format(
                saved["verdict"], self.result["verdict"]
            )
        ]
        if self.match:
            lines.append("  identical reproduction (all compared fields match)")
        else:
            lines.append("  DIVERGED on: {}".format(", ".join(self.diffs)))
            if "episodes" in self.diffs:
                lines.append(
                    "  episode records differ: saved {} vs fresh {}".format(
                        len(saved.get("episodes", [])),
                        len(self.result.get("episodes", [])),
                    )
                )
        for line in self.result.get("trace_tail", [])[-8:]:
            lines.append("  {}".format(line))
        return "\n".join(lines)


def replay(artifact_or_path):
    """Re-run an artifact's spec and compare against its saved result."""
    artifact = (
        artifact_or_path
        if isinstance(artifact_or_path, dict)
        else load_artifact(artifact_or_path)
    )
    result = run_trial(artifact["spec"])
    return ReplayReport(artifact, result)
