"""Replayable fault schedules.

A schedule is a list of self-contained fault events against a cluster
of ``n`` servers, identified by host *index* so the same schedule can
be replayed against any freshly built cluster of the same size. Every
event carries its own healing action (a flap comes back up, a crashed
host reboots, a partition heals, a leaver rejoins), so removing any
subset of events — the shrinker's only operation — always leaves a
well-formed schedule.

Schedules serialize to plain JSON dicts; round-tripping through
:meth:`FaultSchedule.to_dict` / :meth:`FaultSchedule.from_dict` is
exact (Python floats survive JSON unchanged), which is what makes
byte-identical replay possible.
"""

import json

NIC_FLAP = "nic_flap"
CRASH = "crash"
PARTITION = "partition"
LEAVE = "leave"

# Gray-failure kinds (docs/FAULTS.md): components degrade without dying.
ASYM_PARTITION = "asym_partition"
BURST_LOSS = "burst_loss"
SLOW_HOST = "slow_host"
CLOCK_SKEW = "clock_skew"
DAEMON_WEDGE = "daemon_wedge"

# State-corruption kinds (docs/FAULTS.md, "State corruption"): protocol
# state itself is mutated; the exact mutation is drawn at injection time
# from the injector's dedicated ``fault/corrupt`` stream, so the
# schedule only carries (kind, time, host).
CORRUPT_VIP_TABLE = "corrupt_vip_table"
CORRUPT_MEMBERSHIP = "corrupt_membership"
CORRUPT_SEQUENCE = "corrupt_sequence"
CORRUPT_EPOCH = "corrupt_epoch"

KINDS = (NIC_FLAP, CRASH, PARTITION, LEAVE)
GRAY_KINDS = (ASYM_PARTITION, BURST_LOSS, SLOW_HOST, CLOCK_SKEW, DAEMON_WEDGE)
CORRUPT_KINDS = (
    CORRUPT_VIP_TABLE,
    CORRUPT_MEMBERSHIP,
    CORRUPT_SEQUENCE,
    CORRUPT_EPOCH,
)
ALL_KINDS = KINDS + GRAY_KINDS + CORRUPT_KINDS


class FaultEvent:
    """One self-healing fault: kind, onset time, target, duration.

    ``host`` is a server index (flap / crash / leave / slow / skew /
    wedge); ``split`` is a sorted tuple of server indices forming the
    broken-off partition group (for ``asym_partition``: the *deaf*
    side). ``duration`` is the time until the event's own healing
    action (nic_up, recover+restart, heal, rejoin, unslow, unskew,
    unwedge). ``param`` is an optional fault magnitude — BAD-state loss
    probability for ``burst_loss``, timer stretch factor for
    ``slow_host``, clock offset for ``clock_skew`` — serialised only
    when set, so pre-gray schedules round-trip unchanged.
    """

    __slots__ = ("kind", "time", "host", "duration", "split", "param")

    def __init__(self, kind, time, host=None, duration=0.0, split=None, param=None):
        if kind not in ALL_KINDS:
            raise ValueError("unknown fault kind {!r}".format(kind))
        self.kind = kind
        self.time = float(time)
        self.host = None if host is None else int(host)
        self.duration = float(duration)
        self.split = None if split is None else tuple(sorted(int(i) for i in split))
        self.param = None if param is None else float(param)

    def to_dict(self):
        data = {"kind": self.kind, "time": self.time, "duration": self.duration}
        if self.host is not None:
            data["host"] = self.host
        if self.split is not None:
            data["split"] = list(self.split)
        if self.param is not None:
            data["param"] = self.param
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["kind"],
            data["time"],
            host=data.get("host"),
            duration=data.get("duration", 0.0),
            split=data.get("split"),
            param=data.get("param"),
        )

    def __eq__(self, other):
        return isinstance(other, FaultEvent) and self.to_dict() == other.to_dict()

    def __repr__(self):
        target = self.host if self.host is not None else list(self.split or ())
        return "FaultEvent({} t={:.3f} target={} dur={:.3f})".format(
            self.kind, self.time, target, self.duration
        )


class FaultSchedule:
    """An ordered list of fault events plus the observation horizon."""

    __slots__ = ("events", "horizon")

    def __init__(self, events, horizon):
        self.events = sorted(
            (e for e in events), key=lambda e: (e.time, e.kind, e.host or -1)
        )
        self.horizon = float(horizon)

    def tail_time(self):
        """Simulated time by which every healing action has fired."""
        return max((e.time + e.duration for e in self.events), default=0.0)

    def replace_events(self, events):
        """A new schedule with the same horizon and different events."""
        return FaultSchedule(events, self.horizon)

    def to_dict(self):
        return {
            "horizon": self.horizon,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            [FaultEvent.from_dict(e) for e in data["events"]], data["horizon"]
        )

    def to_json(self):
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def __len__(self):
        return len(self.events)

    def __eq__(self, other):
        return isinstance(other, FaultSchedule) and self.to_dict() == other.to_dict()

    def __repr__(self):
        return "FaultSchedule({} events, horizon={})".format(
            len(self.events), self.horizon
        )


def generate_schedule(
    rng,
    n_hosts,
    horizon=40.0,
    n_events=8,
    min_duration=3.0,
    max_duration=10.0,
    gray=False,
    corrupt=False,
):
    """Draw a random schedule from ``rng`` (a ``random.Random`` stream).

    The mix mirrors the chaos soak's repertoire: interface flaps are
    the paper's §6 fault and the most common, crashes exercise
    reboot-and-restart, partitions exercise component splits/merges,
    and graceful leaves exercise the lightweight voluntary path. All
    draws come from the single supplied stream, so the schedule is a
    pure function of the stream's seed.

    With ``gray=True`` the mix shifts toward the gray repertoire
    (one-way partitions, burst loss, slow hosts, clock skew, wedged
    daemons) while keeping a fail-stop backbone, so campaigns exercise
    the interaction of both regimes. ``gray=False`` draws exactly the
    historical sequence — existing campaign seeds reproduce their
    schedules bit-for-bit.

    With ``corrupt=True`` the mix adds the four state-corruption kinds
    on top of a thinned fail-stop + gray backbone. Corruption events
    are instantaneous (``duration=0.0``) — recovery is the cluster's
    job, not the schedule's — and carry no param: the concrete mutation
    is drawn at injection time from the injector's ``fault/corrupt``
    stream. ``corrupt`` takes precedence over ``gray``.
    """
    if n_hosts < 2:
        raise ValueError("schedules need at least 2 hosts")
    events = []
    for _ in range(int(n_events)):
        time = rng.uniform(0.5, max(horizon - max_duration, 1.0))
        duration = rng.uniform(min_duration, max_duration)
        choice = rng.random()
        if corrupt:
            events.append(
                _corrupt_event(rng, n_hosts, time, duration, choice)
            )
        elif gray:
            events.append(
                _gray_event(rng, n_hosts, time, duration, choice)
            )
        elif choice < 0.35:
            events.append(
                FaultEvent(NIC_FLAP, time, host=rng.randrange(n_hosts), duration=duration)
            )
        elif choice < 0.60:
            events.append(
                FaultEvent(CRASH, time, host=rng.randrange(n_hosts), duration=duration)
            )
        elif choice < 0.85:
            size = rng.randint(1, n_hosts - 1)
            split = rng.sample(range(n_hosts), size)
            events.append(FaultEvent(PARTITION, time, duration=duration, split=split))
        else:
            events.append(
                FaultEvent(LEAVE, time, host=rng.randrange(n_hosts), duration=duration)
            )
    return FaultSchedule(events, horizon)


def _gray_event(rng, n_hosts, time, duration, choice):
    """One event of the gray mix (shared time/duration/choice draws)."""
    if choice < 0.12:
        return FaultEvent(NIC_FLAP, time, host=rng.randrange(n_hosts), duration=duration)
    if choice < 0.24:
        return FaultEvent(CRASH, time, host=rng.randrange(n_hosts), duration=duration)
    if choice < 0.34:
        size = rng.randint(1, n_hosts - 1)
        split = rng.sample(range(n_hosts), size)
        return FaultEvent(PARTITION, time, duration=duration, split=split)
    if choice < 0.52:
        # One-way partition: the split side goes deaf but keeps talking.
        size = rng.randint(1, n_hosts - 1)
        split = rng.sample(range(n_hosts), size)
        return FaultEvent(ASYM_PARTITION, time, duration=duration, split=split)
    if choice < 0.68:
        return FaultEvent(
            BURST_LOSS, time, duration=duration, param=rng.uniform(0.5, 0.95)
        )
    if choice < 0.80:
        return FaultEvent(
            SLOW_HOST,
            time,
            host=rng.randrange(n_hosts),
            duration=duration,
            param=rng.uniform(1.5, 3.0),
        )
    if choice < 0.90:
        return FaultEvent(
            CLOCK_SKEW,
            time,
            host=rng.randrange(n_hosts),
            duration=duration,
            param=rng.uniform(-5.0, 5.0),
        )
    return FaultEvent(DAEMON_WEDGE, time, host=rng.randrange(n_hosts), duration=duration)


def _corrupt_event(rng, n_hosts, time, duration, choice):
    """One event of the corruption mix (shared time/duration/choice draws).

    Keeps a thinned fail-stop + gray backbone (~54%) so corruption
    interacts with partitions, wedges and restarts rather than landing
    on a quiet cluster, then spends the rest on the four corruption
    kinds. Corruption events target a host index and heal instantly
    (the repair is the system's job).
    """
    if choice < 0.08:
        return FaultEvent(NIC_FLAP, time, host=rng.randrange(n_hosts), duration=duration)
    if choice < 0.16:
        return FaultEvent(CRASH, time, host=rng.randrange(n_hosts), duration=duration)
    if choice < 0.22:
        size = rng.randint(1, n_hosts - 1)
        split = rng.sample(range(n_hosts), size)
        return FaultEvent(PARTITION, time, duration=duration, split=split)
    if choice < 0.30:
        size = rng.randint(1, n_hosts - 1)
        split = rng.sample(range(n_hosts), size)
        return FaultEvent(ASYM_PARTITION, time, duration=duration, split=split)
    if choice < 0.38:
        return FaultEvent(
            BURST_LOSS, time, duration=duration, param=rng.uniform(0.5, 0.95)
        )
    if choice < 0.44:
        return FaultEvent(
            SLOW_HOST,
            time,
            host=rng.randrange(n_hosts),
            duration=duration,
            param=rng.uniform(1.5, 3.0),
        )
    if choice < 0.48:
        return FaultEvent(
            CLOCK_SKEW,
            time,
            host=rng.randrange(n_hosts),
            duration=duration,
            param=rng.uniform(-5.0, 5.0),
        )
    if choice < 0.54:
        return FaultEvent(
            DAEMON_WEDGE, time, host=rng.randrange(n_hosts), duration=duration
        )
    if choice < 0.66:
        return FaultEvent(CORRUPT_VIP_TABLE, time, host=rng.randrange(n_hosts))
    if choice < 0.78:
        return FaultEvent(CORRUPT_MEMBERSHIP, time, host=rng.randrange(n_hosts))
    if choice < 0.90:
        return FaultEvent(CORRUPT_SEQUENCE, time, host=rng.randrange(n_hosts))
    return FaultEvent(CORRUPT_EPOCH, time, host=rng.randrange(n_hosts))
