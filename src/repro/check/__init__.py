"""repro.check — systematic fault-schedule exploration.

The paper's correctness claims (Property 1: exact VIP coverage per
connected component; Property 2: convergence after stabilization) are
only as strong as the fault interleavings they were tested under. This
package *searches* for schedules that break them:

* :mod:`repro.check.schedule` — randomized but fully deterministic
  fault schedules (NIC flaps, crashes, partitions, graceful leaves),
  serialized as replayable JSON.
* :mod:`repro.check.trial` — one trial: fresh simulation, fresh
  cluster, continuous invariant sampling, end-of-trial convergence.
* :mod:`repro.check.campaign` — fan trials across worker processes
  with per-trial forked RNG seeds; shrink and archive failures.
* :mod:`repro.check.shrink` — delta-debugging minimization of a
  failing schedule to the fewest fault events that still reproduce.
* :mod:`repro.check.replay` — byte-identical reproduction of a saved
  failure artifact.
* :mod:`repro.check.fixtures` — daemon variants, including planted
  bugs used to prove the campaign can actually find violations.
"""

from repro.check.campaign import (
    CampaignReport,
    build_specs,
    build_trial_spec,
    campaign_params,
    run_campaign,
    run_campaign_trials,
)
from repro.check.replay import load_artifact, replay
from repro.check.schedule import FaultEvent, FaultSchedule, generate_schedule
from repro.check.shrink import shrink_spec
from repro.check.trial import make_spec, run_trial

__all__ = [
    "CampaignReport",
    "FaultEvent",
    "FaultSchedule",
    "build_specs",
    "build_trial_spec",
    "campaign_params",
    "generate_schedule",
    "load_artifact",
    "make_spec",
    "replay",
    "run_campaign",
    "run_campaign_trials",
    "run_trial",
    "shrink_spec",
]
