"""One campaign trial: plain dict in, plain dict out.

Specs and results are JSON-compatible dicts so trials can cross
process boundaries (``concurrent.futures``) and land in replayable
artifacts unchanged. ``run_trial`` is a pure function of its spec:
the simulation seed, the schedule, and every harness guard depend only
on simulated state, never on wall-clock or process identity.
"""

from repro.check.fixtures import daemon_class
from repro.check.harness import CheckCluster
from repro.check.schedule import FaultSchedule
from repro.obs.degraded import degraded_spans_as_dicts
from repro.obs.episodes import episodes_as_dicts
from repro.obs.stabilization import stabilization_spans_as_dicts
from repro.sim.simulation import Simulation

SPEC_DEFAULTS = {
    "n_servers": 4,
    "n_vips": 8,
    "fixture": "standard",
    "sample_interval": 0.25,
    "settle_timeout": 30.0,
    "trace_tail": 30,
    "trace_capacity": 4096,
    # Gray mode: hardened cluster (K-miss detection, ARP retries and
    # conflict resolution, daemon supervisors) against the gray fault
    # repertoire. Off reproduces the historical cluster exactly.
    "gray": False,
    # Corruption mode: gray hardening plus periodic self-stabilization
    # audits against the state-corruption repertoire. Off reproduces
    # the historical cluster exactly.
    "corrupt": False,
    # Flow plane: aggregate clients spread across the trial VIPs. Zero
    # keeps the historical trials byte-identical (no engine at all).
    "flow_users": 0,
    "flow_rate": 1.0,
}

# How long (simulated seconds) a view-relative violation must persist,
# seen at every sample, before a *gray* trial fails. Twice the worst
# legitimate reconfiguration window of the hardened fast config
# (K-miss detection ~0.7s plus a regather).
GRAY_VIOLATION_GRACE = 1.5

# Corruption trials get a longer grace: a corrupted table or view is
# only discovered at the next stabilization audit tick (0.5s), and the
# repair may itself need an ARP round or a regather on top.
CORRUPT_VIOLATION_GRACE = 2.5


def make_spec(seed, schedule, **overrides):
    """Build a trial spec dict; ``schedule`` is a FaultSchedule or dict."""
    if isinstance(schedule, FaultSchedule):
        schedule = schedule.to_dict()
    spec = dict(SPEC_DEFAULTS)
    unknown = set(overrides) - set(SPEC_DEFAULTS)
    if unknown:
        raise ValueError("unknown spec fields: {}".format(sorted(unknown)))
    spec.update(overrides)
    spec["seed"] = int(seed)
    spec["schedule"] = schedule
    return spec


def run_trial(spec):
    """Run one trial; returns a verdict dict.

    Verdicts:

    * ``pass`` — no invariant violation during the fault window and
      the cluster reconverged to exact coverage afterwards.
    * ``violation`` — the continuous view-relative Property 1 check
      (:meth:`CoverageAuditor.check_by_view`) failed mid-run.
    * ``no_convergence`` — Property 2 failed: the cluster never
      settled back to clean physical coverage after all faults healed.
    * ``setup_failed`` — the cluster never stabilized before faults
      (indicates a harness problem, not a protocol bug).
    """
    schedule = FaultSchedule.from_dict(spec["schedule"])
    sim = Simulation(
        seed=spec["seed"], trace_enabled=True, trace_capacity=spec["trace_capacity"]
    )
    cluster = CheckCluster(
        sim,
        spec["n_servers"],
        spec["n_vips"],
        daemon_class(spec["fixture"]),
        gray=spec["gray"],
        corrupt=spec["corrupt"],
    )
    if spec.get("flow_users"):
        cluster.attach_flow(spec["flow_users"], spec.get("flow_rate", 1.0))
    cluster.start()
    if not cluster.settle(timeout=spec["settle_timeout"]):
        return _failure(spec, sim, cluster, "setup_failed", [])

    start = sim.now
    cluster.apply_schedule(schedule, start)
    end = start + schedule.horizon
    interval = spec["sample_interval"]
    # Gray trials debounce the continuous check: a violation fails the
    # trial only once the same (kind, slot) has been violated at every
    # sample for GRAY_VIOLATION_GRACE seconds. Gray faults legitimately
    # open bounded windows — a singleton that handed addresses back
    # during ARP conflict repair and was then isolated needs one
    # failure-detection + regather cycle (~1s with the hardened fast
    # config) to take them all back — while real protocol bugs persist
    # indefinitely. Fail-stop trials keep the historical instant-fail
    # semantics.
    debounce = spec["gray"] or spec["corrupt"]
    grace = CORRUPT_VIOLATION_GRACE if spec["corrupt"] else GRAY_VIOLATION_GRACE
    first_seen = {}
    while sim.now < end - 1e-9:
        sim.run_for(min(interval, end - sim.now))
        cluster.refresh_auditor()
        violations = cluster.auditor.check_by_view()
        if violations and not debounce:
            return _failure(spec, sim, cluster, "violation", violations)
        first_seen = {
            (v.kind, v.slot): first_seen.get((v.kind, v.slot), sim.now)
            for v in violations
        }
        persistent = [
            v
            for v in violations
            if sim.now - first_seen[(v.kind, v.slot)] >= grace - 1e-9
        ]
        if persistent:
            return _failure(spec, sim, cluster, "violation", persistent)

    # Let every event's own healing action fire, then demand convergence.
    tail = start + schedule.tail_time() + 1.0
    if sim.now < tail:
        sim.run_for(tail - sim.now)
    if not cluster.settle(timeout=spec["settle_timeout"]):
        cluster.refresh_auditor()
        return _failure(spec, sim, cluster, "no_convergence", cluster.auditor.check())
    result = {
        "verdict": "pass",
        "seed": spec["seed"],
        "sim_time": round(sim.now, 6),
        "events_fired": sim.scheduler.events_fired,
        "restarts": cluster.restarts,
        "metrics": sim.metrics.totals(),
        "episodes": episodes_as_dicts(sim.trace.records),
        "fault_log": cluster.faults.log_as_dicts(),
        "degraded": degraded_spans_as_dicts(sim.trace.records),
    }
    _attach_flow_totals(result, cluster)
    _attach_stabilization(result, spec, sim)
    return result


def _attach_flow_totals(result, cluster):
    # Only trials that ran a flow plane carry the key, so historical
    # artifacts (no "flow" on either side) still replay-compare clean.
    if cluster.flow_engine is not None:
        result["flow"] = cluster.flow_engine.fingerprint()


def _attach_stabilization(result, spec, sim):
    # Same conditional-key convention as the flow plane: only corrupt
    # trials carry time-to-stabilize spans.
    if spec.get("corrupt"):
        result["stabilization"] = stabilization_spans_as_dicts(sim.trace.records)


def _failure(spec, sim, cluster, verdict, violations):
    result = {
        "verdict": verdict,
        "seed": spec["seed"],
        "sim_time": round(sim.now, 6),
        "violations": sorted(repr(v) for v in violations),
        "violation_kinds": sorted({v.kind for v in violations}),
        "trace_tail": [repr(r) for r in sim.trace.tail(spec["trace_tail"])],
        "metrics": sim.metrics.totals(),
        "episodes": episodes_as_dicts(sim.trace.records),
        "fault_log": cluster.faults.log_as_dicts(),
        "degraded": degraded_spans_as_dicts(sim.trace.records),
    }
    _attach_flow_totals(result, cluster)
    _attach_stabilization(result, spec, sim)
    return result


def result_signature(result):
    """What must match for two failures to count as "the same bug"."""
    return (result["verdict"], tuple(result.get("violation_kinds", ())))
