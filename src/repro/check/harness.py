"""Disposable trial clusters and deterministic schedule application.

The harness rebuilds, for each trial, the same shape of cluster the
tests use (one LAN, ``n`` servers each running GCS + Wackamole) and
turns a :class:`~repro.check.schedule.FaultSchedule` into scheduled
:class:`~repro.net.fault.FaultInjector` calls. Every guard in the
appliers depends only on simulated state, so the whole trial stays a
pure function of (seed, schedule).
"""

from repro.core.audit import CoverageAuditor
from repro.core.config import WackamoleConfig
from repro.core.state import RUN
from repro.core.supervisor import DaemonSupervisor
from repro.gcs.config import SpreadConfig
from repro.gcs.daemon import SpreadDaemon
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.net.linkfault import GilbertElliott
from repro.stabilization import StabilizationConfig

from repro.check import schedule as sched

#: Audit cadence for corrupt clusters: fast enough that a corruption is
#: caught well inside CORRUPT_VIOLATION_GRACE, slow enough that the
#: audit itself stays background noise against the fast Table 1 ratios.
CORRUPT_STABILIZE_INTERVAL = 0.5


def fast_spread_config(suspicion_misses=1, stabilization=None):
    """The test suite's aggressive timeouts (Table 1 ratios preserved)."""
    return SpreadConfig(
        fault_detection_timeout=0.5,
        heartbeat_timeout=0.2,
        discovery_timeout=0.5,
        join_interval=0.02,
        form_timeout=0.3,
        install_timeout=0.3,
        suspicion_misses=suspicion_misses,
        stabilization=stabilization,
    )


#: Wackamole hardening applied by gray clusters (docs/FAULTS.md): ARP
#: retries + periodic re-announcement, conflict re-ARP and wire-level
#: conflict resolution, and a fast reconnect cycle for supervised
#: daemon restarts.
GRAY_WACK_OVERRIDES = {
    "arp_announce_retries": 2,
    "arp_announce_backoff": 0.3,
    "arp_reannounce_interval": 2.0,
    "conflict_reannounce": True,
    "arp_conflict_resolution": True,
    "arp_conflict_holddown": 0.5,
    "reconnect_interval": 0.5,
}


class CheckCluster:
    """One LAN of ``n`` fail-over servers, built for a single trial."""

    SUBNET = "10.9.0.0/24"

    def __init__(
        self,
        sim,
        n_servers,
        n_vips,
        daemon_cls,
        wack_overrides=None,
        gray=False,
        corrupt=False,
    ):
        self.sim = sim
        self.daemon_cls = daemon_cls
        # Corruption trials need every gray hardening (supervisors catch
        # wedges, K-miss detection rides out burst loss) plus the
        # periodic self-stabilization audits that notice corrupted state.
        self.corrupt = bool(corrupt)
        self.gray = gray = bool(gray) or self.corrupt
        stabilization = (
            StabilizationConfig(interval=CORRUPT_STABILIZE_INTERVAL)
            if self.corrupt
            else None
        )
        self.lan = Lan(sim, "check", self.SUBNET)
        self.spread_config = fast_spread_config(
            suspicion_misses=2 if gray else 1, stabilization=stabilization
        )
        self.vips = ["10.9.0.{}".format(100 + i) for i in range(n_vips)]
        overrides = {"maturity_timeout": 0.5, "balance_timeout": 1.5}
        if gray:
            overrides.update(GRAY_WACK_OVERRIDES)
        if stabilization is not None:
            overrides["stabilization"] = stabilization
        overrides.update(wack_overrides or {})
        self.wconfig = WackamoleConfig.for_vips(self.vips, **overrides)
        self.faults = FaultInjector(sim)
        self.hosts, self.spreads, self.wacks = [], [], []
        self.supervisors = []
        for index in range(n_servers):
            host = Host(sim, "s{}".format(index))
            host.add_nic(self.lan, "10.9.0.{}".format(10 + index))
            spread = SpreadDaemon(host, self.lan, self.spread_config)
            wack = daemon_cls(host, spread, self.wconfig)
            self.hosts.append(host)
            self.spreads.append(spread)
            self.wacks.append(wack)
            if gray:
                supervisor = DaemonSupervisor(
                    host,
                    check_interval=0.5,
                    stall_checks=3,
                    restart_backoff=0.5,
                    backoff_cap=4.0,
                    stable_after=5.0,
                    on_restart=self._make_on_restart(index),
                )
                supervisor.watch_wackamole(wack)
                self.supervisors.append(supervisor)
        self.auditor = CoverageAuditor(self.wacks)
        self.restarts = 0
        self.flow_engine = None
        self.flow_host = None

    def attach_flow(self, flow_users, flow_rate=1.0, tick=0.05):
        """Attach an aggregate client population across the trial VIPs.

        Must be called before :meth:`start`. The pools resolve through a
        dedicated client host's ARP view, so the trial's flow totals
        price exactly the outage windows its fault schedule opens.
        """
        from repro.flow import ArpViewResolver, FlowEngine, FlowPool

        self.flow_host = Host(self.sim, "flowclients")
        self.flow_host.add_nic(self.lan, "10.9.0.200")
        resolver = ArpViewResolver(self.lan, self.flow_host, self.hosts)
        self.flow_engine = FlowEngine(self.sim, resolver=resolver, tick=tick, name="check")
        share, remainder = divmod(int(flow_users), len(self.vips))
        for index, vip in enumerate(self.vips):
            users = share + (1 if index < remainder else 0)
            if users:
                self.flow_engine.add_pool(
                    FlowPool("pool-{}".format(index), vip, users, rate=flow_rate)
                )
        return self.flow_engine

    def start(self, stagger=0.03):
        """Boot every daemon with a small start stagger."""
        for index, (spread, wack) in enumerate(zip(self.spreads, self.wacks)):
            self.sim.after(stagger * index, spread.start)
            self.sim.after(stagger * index + 0.01, wack.start)
        for supervisor in self.supervisors:
            supervisor.start()
        if self.flow_engine is not None:
            self.flow_engine.start()
        return self

    def _make_on_restart(self, index):
        def on_restart(kind, old, new):
            # Keep the harness's daemon lists pointing at the current
            # generation so sampling and settling see live daemons.
            if kind == "spread":
                if self.spreads[index] is old:
                    self.spreads[index] = new
            elif kind == "wackamole":
                if self.wacks[index] is old:
                    self.wacks[index] = new

        return on_restart

    # ------------------------------------------------------------------
    # invariant plumbing

    def refresh_auditor(self):
        """Point the auditor at the current daemon generation."""
        self.auditor.daemons = list(self.wacks)
        return self.auditor

    def is_settled(self):
        """Every live daemon RUN, mature, connected — and coverage exact."""
        self.refresh_auditor()
        live = [w for w in self.wacks if w.alive]
        return bool(
            live
            and all(w.machine.state == RUN and w.mature for w in live)
            and all(
                w.client is not None and w.client.connected and w.view is not None
                for w in live
            )
            and not self.auditor.check()
        )

    def settle(self, timeout=30.0, step=0.2):
        """Run until :meth:`is_settled` holds (True) or timeout (False)."""
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            self.sim.run_for(step)
            if self.is_settled():
                self.sim.run_for(step)
                return True
        return False

    # ------------------------------------------------------------------
    # schedule application

    def apply_schedule(self, schedule, start_time):
        """Schedule every fault event relative to ``start_time``."""
        for event in schedule.events:
            self.sim.at(start_time + event.time, self._apply_event, event)

    def _apply_event(self, event):
        if event.kind == sched.NIC_FLAP:
            host = self.hosts[event.host]
            nic = host.nics[0]
            if not host.alive or not nic.up:
                return
            self.faults.nic_down(nic)
            self.sim.after(event.duration, self._restore_nic, nic)
        elif event.kind == sched.CRASH:
            host = self.hosts[event.host]
            # Never take the cluster below two live servers: the
            # properties under test concern surviving components.
            if not host.alive or sum(1 for h in self.hosts if h.alive) <= 2:
                return
            self.faults.crash_host(host)
            self.sim.after(event.duration, self._revive, event.host)
        elif event.kind == sched.PARTITION:
            group = [self.hosts[i] for i in event.split if i < len(self.hosts)]
            if not group or len(group) == len(self.hosts):
                return
            self.faults.partition(self.lan, [group])
            self.sim.after(event.duration, self.faults.heal, self.lan)
        elif event.kind == sched.LEAVE:
            wack = self.wacks[event.host]
            if not wack.alive or not wack.host.alive:
                return
            wack.shutdown()
            self.sim.after(event.duration, self._rejoin, event.host)
        elif event.kind == sched.ASYM_PARTITION:
            deaf = [self.hosts[i] for i in event.split if i < len(self.hosts)]
            if not deaf or len(deaf) == len(self.hosts):
                return
            self.faults.asym_partition(self.lan, deaf)
            self.sim.after(event.duration, self.faults.asym_heal, self.lan)
        elif event.kind == sched.BURST_LOSS:
            model = GilbertElliott(loss_bad=event.param if event.param else 0.9)
            self.faults.burst_loss_on(self.lan, model)
            self.sim.after(event.duration, self.faults.burst_loss_off, self.lan)
        elif event.kind == sched.SLOW_HOST:
            host = self.hosts[event.host]
            if not host.alive:
                return
            self.faults.slow_host(host, event.param if event.param else 2.0)
            self.sim.after(event.duration, self._unslow, event.host)
        elif event.kind == sched.CLOCK_SKEW:
            host = self.hosts[event.host]
            if not host.alive:
                return
            self.faults.skew_clock(host, event.param if event.param else 2.0)
            self.sim.after(event.duration, self._unskew, event.host)
        elif event.kind == sched.DAEMON_WEDGE:
            host = self.hosts[event.host]
            spread = getattr(host, "spread_daemon", None)
            if not host.alive or spread is None or not spread.alive or spread.wedged:
                return
            self.faults.wedge_daemon(spread)
            # Failsafe: if no supervisor replaced it by then, unwedge.
            self.sim.after(event.duration, self._unwedge, spread)
        elif event.kind == sched.CORRUPT_VIP_TABLE:
            wack = self.wacks[event.host]
            if not wack.alive or not wack.host.alive:
                return
            self.faults.corrupt_vip_table(wack)
        elif event.kind == sched.CORRUPT_MEMBERSHIP:
            spread = self._corruptible_spread(event.host)
            if spread is not None:
                self.faults.corrupt_membership(spread)
        elif event.kind == sched.CORRUPT_SEQUENCE:
            spread = self._corruptible_spread(event.host)
            if spread is not None:
                self.faults.corrupt_sequence(spread)
        elif event.kind == sched.CORRUPT_EPOCH:
            spread = self._corruptible_spread(event.host)
            if spread is not None:
                self.faults.corrupt_epoch(spread)

    def _corruptible_spread(self, index):
        """The host's live, unwedged GCS daemon, or None.

        Corrupting a dead or wedged daemon's state would be invisible
        (the supervisor replaces it wholesale), so those injections are
        skipped the same way a crash on a dead host is.
        """
        host = self.hosts[index]
        spread = getattr(host, "spread_daemon", None)
        if (
            not host.alive
            or spread is None
            or not spread.alive
            or not spread.started
            or spread.wedged
        ):
            return None
        return spread

    def _restore_nic(self, nic):
        if nic.host.alive and not nic.up:
            self.faults.nic_up(nic)

    def _unslow(self, index):
        host = self.hosts[index]
        if host.alive and host.time_scale != 1.0:
            self.faults.unslow_host(host)

    def _unskew(self, index):
        host = self.hosts[index]
        if host.alive and host.clock_skew != 0.0:
            self.faults.unskew_clock(host)

    def _unwedge(self, spread):
        if spread.alive and spread.wedged:
            self.faults.unwedge_daemon(spread)

    def _revive(self, index):
        host = self.hosts[index]
        if host.alive:
            return
        self.faults.recover_host(host)
        self.restarts += 1
        spread = SpreadDaemon(
            host,
            self.lan,
            self.spread_config,
            daemon_id="{}-r{}".format(host.name, self.restarts),
        )
        wack = self.daemon_cls(host, spread, self.wconfig)
        spread.start()
        wack.start()
        self.spreads[index] = spread
        self.wacks[index] = wack
        if self.gray:
            # The host crash killed the supervisor with every other
            # service; the rebooted machine gets a fresh one.
            supervisor = DaemonSupervisor(
                host,
                check_interval=0.5,
                stall_checks=3,
                restart_backoff=0.5,
                backoff_cap=4.0,
                stable_after=5.0,
                on_restart=self._make_on_restart(index),
            )
            supervisor.watch_wackamole(wack)
            supervisor.start()
            self.supervisors[index] = supervisor

    def _rejoin(self, index):
        host = self.hosts[index]
        if not host.alive or self.wacks[index].alive:
            return
        wack = self.daemon_cls(host, host.spread_daemon, self.wconfig)
        wack.start()
        self.wacks[index] = wack
