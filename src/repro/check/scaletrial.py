"""Scale-tier check trials: the segmented cluster under a fault schedule.

The counterpart of :mod:`repro.check.trial` for the 64–1024-host tier
built on :mod:`repro.apps.scalecluster`. Specs and results are plain
JSON-compatible dicts and ``run_scale_trial`` is a pure function of its
spec — same seed, byte-identical artifact — which is the property the
scale determinism tests assert.

Invariants checked:

* **single-owner coverage** — at every sample after the grace window,
  no VIP may be bound by more than one *live* manager for longer than
  ``duplicate_grace`` seconds (a bounded duplicate window during view
  propagation is legitimate; a persistent one is a protocol bug);
* **convergence** — after the last fault heals, all live nodes must
  install one global view naming exactly the live hosts, with every
  VIP bound exactly once.

The fault schedule is generated from the seed: ``n_faults`` kill/revive
pairs against distinct victims, never more than half of any segment at
once, so the leader-succession chain always has a survivor.
"""

import time as _time

from repro.apps.scalecluster import ScaleClusterScenario, ShardedScaleScenario
from repro.sim.rng import RngRegistry
from repro.sim.shard.merge import artifact_bytes

SCALE_SPEC_DEFAULTS = {
    "n_hosts": 64,
    "n_vips": 512,
    "segment_size": 16,
    "n_faults": 3,
    "fault_spacing": 4.0,
    "revive_after": 6.0,
    "settle_timeout": 30.0,
    "sample_interval": 0.5,
    "duplicate_grace": 3.0,
}


def make_scale_spec(seed, **overrides):
    """Build a scale-trial spec dict (see SCALE_SPEC_DEFAULTS)."""
    spec = dict(SCALE_SPEC_DEFAULTS)
    unknown = set(overrides) - set(SCALE_SPEC_DEFAULTS)
    if unknown:
        raise ValueError("unknown scale spec fields: {}".format(sorted(unknown)))
    spec.update(overrides)
    spec["seed"] = int(seed)
    return spec


def _pick_victims(spec):
    """Deterministic victim indices: distinct, at most half a segment.

    Derived from the spec seed through a named RNG stream, so the
    schedule is part of the trial's pure function.
    """
    rng = RngRegistry(spec["seed"]).stream("scale-victims")
    segment_size = spec["segment_size"]
    per_segment_cap = max(1, segment_size // 2)
    victims = []
    used_per_segment = {}
    candidates = list(range(spec["n_hosts"]))
    while len(victims) < spec["n_faults"] and candidates:
        index = candidates.pop(rng.randrange(len(candidates)))
        segment = index // segment_size
        if used_per_segment.get(segment, 0) >= per_segment_cap:
            continue
        used_per_segment[segment] = used_per_segment.get(segment, 0) + 1
        victims.append(index)
    return victims


def run_scale_trial(spec):
    """Run one scale trial; returns a JSON-stable verdict dict.

    Verdicts: ``pass``, ``setup_failed``, ``violation`` (a duplicate
    binding persisted past the grace window), ``no_convergence``.
    """
    scenario = ScaleClusterScenario(
        seed=spec["seed"],
        n_hosts=spec["n_hosts"],
        n_vips=spec["n_vips"],
        segment_size=spec["segment_size"],
    )
    sim = scenario.sim
    scenario.start()
    if not scenario.settle(timeout=spec["settle_timeout"]):
        return _scale_result(spec, scenario, "setup_failed")

    victims = _pick_victims(spec)
    spacing = spec["fault_spacing"]
    for order, victim in enumerate(victims):
        sim.after(spacing * (order + 1), scenario.kill, victim)
        sim.after(spacing * (order + 1) + spec["revive_after"], scenario.revive, victim)
    horizon = spacing * len(victims) + spec["revive_after"]

    # Sampled single-owner check with a persistence grace window.
    interval = spec["sample_interval"]
    grace = spec["duplicate_grace"]
    first_seen = {}
    end = sim.now + horizon
    while sim.now < end - 1e-9:
        sim.run_for(min(interval, end - sim.now))
        _uncovered, duplicated = scenario.coverage_violations()
        now = sim.now
        first_seen = {vip: first_seen.get(vip, now) for vip in duplicated}
        persistent = sorted(
            vip for vip, seen in first_seen.items() if now - seen >= grace - 1e-9
        )
        if persistent:
            return _scale_result(spec, scenario, "violation", persistent=persistent)

    if not scenario.settle(timeout=spec["settle_timeout"]):
        return _scale_result(spec, scenario, "no_convergence")
    return _scale_result(spec, scenario, "pass")


SHARD_PARITY_DEFAULTS = {
    "n_hosts": 256,
    "n_vips": 2048,
    "segment_size": 32,
    "shards": 4,
    "workers": 4,
    "n_faults": 2,
    "fault_spacing": 3.0,
    "revive_after": 4.0,
    "flow_users": 100000,
    "trace_enabled": True,
    "metrics_enabled": True,
}


def make_shard_spec(seed, **overrides):
    """Build a shard-parity spec dict (see SHARD_PARITY_DEFAULTS)."""
    spec = dict(SHARD_PARITY_DEFAULTS)
    unknown = set(overrides) - set(SHARD_PARITY_DEFAULTS)
    if unknown:
        raise ValueError("unknown shard spec fields: {}".format(sorted(unknown)))
    spec.update(overrides)
    spec["seed"] = int(seed)
    return spec


def run_shard_parity_trial(spec):
    """Serial-vs-sharded replay of one fixed-horizon scale scenario.

    Runs the identical :class:`ShardedScaleScenario` script twice —
    once on the serial kernel (``shards=1, workers=0``), once
    partitioned across ``spec["shards"]`` shards with
    ``spec["workers"]`` worker processes — and compares the two merged
    artifacts byte-for-byte. Verdicts: ``pass``,
    ``parity_mismatch``, ``no_convergence``. The two artifact dicts
    ride along in the result so callers (the CLI, the CI
    ``shard-parity`` job) can write them out and ``cmp`` the files.
    """
    victims = _pick_victims(spec)
    spacing = spec["fault_spacing"]
    kills = [(spacing * (order + 1), victim) for order, victim in enumerate(victims)]
    revives = [(t + spec["revive_after"], victim) for t, victim in kills]
    last_fault = max([t for t, _ in revives] or [0.0])
    horizon = last_fault + 2 * spec["revive_after"]
    common = dict(
        seed=spec["seed"],
        n_hosts=spec["n_hosts"],
        n_vips=spec["n_vips"],
        segment_size=spec["segment_size"],
        horizon=horizon,
        kills=kills,
        revives=revives,
        flow_users=spec["flow_users"],
        trace_enabled=spec["trace_enabled"],
        metrics_enabled=spec["metrics_enabled"],
    )
    serial = ShardedScaleScenario(shards=1, workers=0, **common)
    started = _time.perf_counter()
    serial_artifact = serial.run()
    serial_wall = _time.perf_counter() - started
    sharded = ShardedScaleScenario(
        shards=spec["shards"], workers=spec["workers"], **common
    )
    started = _time.perf_counter()
    sharded_artifact = sharded.run()
    sharded_wall = _time.perf_counter() - started

    parity = artifact_bytes(serial_artifact) == artifact_bytes(sharded_artifact)
    if not parity:
        verdict = "parity_mismatch"
    elif not serial_artifact["converged"]:
        verdict = "no_convergence"
    else:
        verdict = "pass"
    return {
        "verdict": verdict,
        "parity": parity,
        "seed": spec["seed"],
        "n_hosts": spec["n_hosts"],
        "shards": spec["shards"],
        "workers": sharded.workers_used,
        "epochs": sharded.epochs,
        "horizon": horizon,
        "events_fired": serial_artifact["events_fired"],
        "serial_wall_s": round(serial_wall, 4),
        "sharded_wall_s": round(sharded_wall, 4),
        "speedup": round(serial_wall / sharded_wall, 3) if sharded_wall else None,
        "serial_artifact": serial_artifact,
        "sharded_artifact": sharded_artifact,
    }


def _scale_result(spec, scenario, verdict, persistent=()):
    uncovered, duplicated = scenario.coverage_violations()
    result = {
        "verdict": verdict,
        "seed": spec["seed"],
        "n_hosts": spec["n_hosts"],
        "n_vips": spec["n_vips"],
        "sim_time": round(scenario.sim.now, 6),
        "events_fired": scenario.sim.scheduler.events_fired,
        "fault_log": scenario.faults.log_as_dicts(),
        "uncovered": len(uncovered),
        "duplicated": len(duplicated),
        "moved_vips": scenario.moved_vips(),
        "fingerprint": scenario.fingerprint(),
    }
    if persistent:
        result["persistent_duplicates"] = list(persistent)
    return result
