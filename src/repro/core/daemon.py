"""The Wackamole daemon: Algorithms 1–3 over the Spread client API.

One daemon per server. On startup it connects to the local GCS daemon
and joins the ``wackamole`` group (§4.2). From then on it follows the
state machine of Figure 2:

* a membership notification is the VIEW_CHANGE event: back up the
  table, multicast a STATE message tagged with the new view, move to
  GATHER;
* in GATHER, every incoming STATE message updates the table with
  eager conflict resolution (ResolveConflicts); when a STATE message
  has arrived from *every* member, Reallocate_IPs covers the holes
  deterministically and the daemon returns to RUN;
* in RUN, the representative re-balances on a timeout (Algorithm 3);
  everyone applies BALANCE messages (Change_IPs);
* losing the GCS connection drops every virtual interface and starts
  the reconnect cycle (§4.2);
* the maturity optimisation (§3.4) keeps a freshly booted cluster
  from churning addresses.
"""

from repro.core.balance import compute_balanced_allocation
from repro.core.conflict import resolve_claim
from repro.core.config import WackamoleConfig
from repro.core.iface import InterfaceManager
from repro.core.messages import (
    AllocMsg,
    ArpShareMsg,
    BalanceMsg,
    MatureMsg,
    StateMsg,
)
from repro.core.notify import ArpNotifier
from repro.core.placement import (
    PLACEMENT_RENDEZVOUS,
    compute_rendezvous_allocation,
    reallocate_ips_rendezvous,
)
from repro.core.reallocate import reallocate_ips
from repro.core.state import GATHER, RUN, StateMachine
from repro.core.table import AllocationTable
from repro.gcs.client import SpreadConnectionError
from repro.sim.process import Process


class WackamoleDaemon(Process):
    """N-way fail-over engine for one server."""

    def __init__(self, host, spread, config, client_name="wack"):
        super().__init__(host.sim, "wack@{}".format(host.name))
        self.host = host
        self.spread = spread
        if not isinstance(config, WackamoleConfig):
            raise TypeError("config must be a WackamoleConfig")
        self.config = config
        host.register_service(self)
        self.notifier = ArpNotifier(host, config)
        self.iface = InterfaceManager(host, config, self.notifier)
        metrics = self.sim.metrics
        self._metrics = metrics
        self._m_reallocations = metrics.counter("core.reallocations", node=host.name)
        self._m_balances_sent = metrics.counter("core.balances_sent", node=host.name)
        self._m_balances_applied = metrics.counter("core.balances_applied", node=host.name)
        self._m_conflicts = metrics.counter("core.conflicts_dropped", node=host.name)
        self._m_reconnects = metrics.counter("core.reconnects", node=host.name)
        self.machine = StateMachine(trace=self._trace_transition)
        self.client = None
        self.client_name = client_name
        self.member_name = None
        self.view = None
        self.table = None
        self.old_table = None
        self.mature = False
        self._state_msgs = {}
        self._preferences = {}
        self._matures = {}
        self._weights = {}
        self._maturity_timer = self.timer(self._on_maturity_timeout, name="maturity")
        self._balance_timer = self.timer(self._on_balance_timeout, name="balance")
        self._reconnect_timer = self.timer(self._try_connect, name="reconnect")
        self._arp_share_timer = None
        if config.arp_share_interval > 0:
            self._arp_share_timer = self.periodic(
                self._share_arp_cache, config.arp_share_interval, name="arp_share"
            )
        self._reannounce_timer = None
        if config.arp_reannounce_interval > 0:
            self._reannounce_timer = self.periodic(
                self._reannounce_vips,
                config.arp_reannounce_interval,
                name="arp_reannounce",
            )
        self._stabilize_timer = None
        if config.stabilization.enabled:
            self._stabilize_timer = self.periodic(
                self._stabilize_audit,
                config.stabilization.interval,
                name="stabilize",
            )
        self.stabilize_repairs = 0
        # Wire-level duplicate-claim detection (docs/FAULTS.md): the
        # host's ARP service reports foreign claims on held VIPs here.
        # Detection is always on; resolution is config-gated.
        host.arp.on_vip_conflict = self._on_arp_conflict
        self._conflict_holddowns = set()
        self._m_vip_conflicts = None
        self.reallocations = 0
        self.balances_sent = 0
        self.balances_applied = 0
        self.conflicts_dropped = 0
        self.reconnect_attempts = 0
        self.arp_conflicts_seen = 0
        self.arp_conflicts_resolved = 0

    # ------------------------------------------------------------------
    # lifecycle

    def start(self):
        """Connect to the local GCS daemon (retrying if it is down)."""
        self._clear_stale_bindings()
        self._try_connect()

    def _clear_stale_bindings(self):
        """Unbind managed VIPs a dead predecessor left on the NICs.

        Kernel address bindings outlive the process that made them: a
        killed daemon's VIPs stay bound, the cluster re-acquires them
        elsewhere, and a supervisor-restarted replacement would
        otherwise ratify a permanent physical duplicate it never knew
        it had. A freshly started daemon owns nothing by definition,
        so any managed address already on a local interface is stale.
        """
        for group in self.config.vip_groups:
            if self.iface.owns(group.group_id):
                continue
            for address in group.addresses:
                for nic in self.host.nics:
                    if nic.owns_ip(address):
                        nic.unbind_ip(address)
                        self.trace(
                            "wackamole", "stale_binding_cleared", ip=str(address)
                        )

    def stop(self):
        """Abrupt daemon death (host crash path); interfaces stay bound.

        A crashed Wackamole daemon cannot clean up after itself —
        stale bindings are exactly what the surviving cluster must
        take over.
        """
        super().stop()

    def shutdown(self):
        """Graceful administrative exit (§6's voluntary-leave case).

        Releases every virtual interface first, then leaves the group
        via the lightweight path, so remaining members reconfigure in
        milliseconds rather than after failure-detection timeouts.
        """
        if not self.alive:
            return
        self.trace("wackamole", "shutdown")
        self.iface.release_all()
        if self.client is not None and self.client.connected:
            self.client.disconnect()
        super().stop()

    # ------------------------------------------------------------------
    # GCS connection management (§4.2)

    def _try_connect(self):
        if not self.alive:
            return
        self.reconnect_attempts += 1
        self._m_reconnects.inc()
        # Like the real system, connect to whatever GCS daemon currently
        # runs on this host (a restarted daemon is a new process).
        current = getattr(self.host, "spread_daemon", None)
        if current is not None:
            self.spread = current
        try:
            client = self.spread.connect(self.client_name)
        except SpreadConnectionError:
            self._reconnect_timer.start(self.config.reconnect_interval)
            return
        self.client = client
        self.member_name = client.private_name
        client.on_message = self._on_message
        client.on_group_view = self._on_group_view
        client.on_disconnect = self._on_disconnect
        self.machine = StateMachine(trace=self._trace_transition)
        self.view = None
        self.table = None
        self._state_msgs = {}
        if not self.mature:
            self._maturity_timer.start(self.config.maturity_timeout)
        if self._arp_share_timer is not None:
            self._arp_share_timer.start()
        if self._reannounce_timer is not None:
            self._reannounce_timer.start()
        if self._stabilize_timer is not None:
            self._stabilize_timer.start()
        client.join(self.config.group_name)
        self.trace("wackamole", "connected", daemon=self.spread.daemon_id)

    def _on_disconnect(self):
        if not self.alive:
            return
        # Without the GCS guarantees correctness cannot be ensured:
        # drop all virtual interfaces and cycle reconnect attempts.
        self.trace("wackamole", "gcs_disconnected")
        self.iface.release_all()
        self.client = None
        self.view = None
        self.table = None
        self._balance_timer.cancel()
        self._maturity_timer.cancel()
        if self._arp_share_timer is not None:
            self._arp_share_timer.stop()
        if self._reannounce_timer is not None:
            self._reannounce_timer.stop()
        if self._stabilize_timer is not None:
            self._stabilize_timer.stop()
        self._reconnect_timer.start(self.config.reconnect_interval)

    # ------------------------------------------------------------------
    # VIEW_CHANGE (Algorithm 1 lines 1-4 / Algorithm 2 lines 7-9)

    def _on_group_view(self, view):
        if not self.alive:
            return
        self.machine.fire("VIEW_CHANGE")
        self._balance_timer.cancel()
        self.old_table = self.table
        self.view = view
        self.table = AllocationTable(self.config.slot_ids(), members=view.members)
        self._state_msgs = {}
        self._preferences = {}
        self._matures = {}
        self._weights = {}
        self.trace(
            "wackamole", "view_change", view=view.view_id, members=list(view.members)
        )
        self._send_state_msg()

    def _send_state_msg(self):
        message = StateMsg(
            self.member_name,
            self.view.view_id,
            self.iface.owned_slots(),
            self.config.prefer,
            self.mature,
            weight=self.config.weight,
        )
        self.client.multicast(self.config.group_name, message)

    # ------------------------------------------------------------------
    # message dispatch

    def _on_message(self, message):
        if not self.alive:
            return
        payload = message.payload
        if isinstance(payload, StateMsg):
            self._on_state_msg(payload)
        elif isinstance(payload, BalanceMsg):
            self._on_balance_msg(payload)
        elif isinstance(payload, AllocMsg):
            self._on_alloc_msg(payload)
        elif isinstance(payload, MatureMsg):
            self._on_mature_msg(payload)
        elif isinstance(payload, ArpShareMsg):
            self.notifier.integrate_share(payload.entries, self.now)

    # ------------------------------------------------------------------
    # placement strategy dispatch (config.placement_strategy)

    def _fill_holes(self, table):
        """Run the configured hole-filling procedure on ``table``.

        Both procedures are pure functions of (table, preferences,
        weights), so every member computes the same grants — the
        strategy knob changes *which* deterministic function runs, not
        the Lemma 2 obligation.
        """
        if self.config.placement_strategy == PLACEMENT_RENDEZVOUS:
            return reallocate_ips_rendezvous(table, self._preferences, self._weights)
        return reallocate_ips(table, self._preferences, self._weights)

    def _balance_target(self):
        """The configured RUN-state target allocation."""
        if self.config.placement_strategy == PLACEMENT_RENDEZVOUS:
            return compute_rendezvous_allocation(
                self.table.members,
                self.table.slots,
                self.table.as_dict(),
                self._preferences,
                self._weights,
            )
        return compute_balanced_allocation(
            self.table.members,
            self.table.slots,
            self.table.as_dict(),
            self._preferences,
            self._weights,
        )

    # ------------------------------------------------------------------
    # GATHER (Algorithm 2)

    def _on_state_msg(self, message):
        if self.machine.state != GATHER:
            return
        if self.view is None or message.view_id != self.view.view_id:
            return
        if message.sender not in self.table.members:
            return
        self._state_msgs[message.sender] = message
        self._preferences[message.sender] = message.preferences
        self._matures[message.sender] = message.mature
        self._weights[message.sender] = getattr(message, "weight", 1.0)
        if message.mature and not self.mature:
            self._become_mature("state message from mature server")
        for slot in message.owned:
            if slot not in self.table.slots:
                continue
            winner, loser = resolve_claim(self.table, slot, message.sender)
            if loser is not None:
                self.conflicts_dropped += 1
                self._m_conflicts.inc()
                self.trace("wackamole", "conflict", slot=slot, winner=winner, loser=loser)
                if loser == self.member_name and self.config.eager_conflict_resolution:
                    # §3.4: restore network-level consistency as soon
                    # as the conflict is noticed.
                    self.iface.release(slot)
                elif (
                    winner == self.member_name
                    and self.config.conflict_reannounce
                    and self.iface.owns(slot)
                ):
                    # We keep the address, but the loser's earlier
                    # announcements may have repointed client caches at
                    # it (acquire is idempotent and stays silent for a
                    # binding we never dropped) — repair them now.
                    self.trace("wackamole", "conflict_reannounce", slot=slot)
                    self.iface.reannounce(slot)
        if set(self._state_msgs) >= set(self.table.members):
            self._complete_gather()

    def _complete_gather(self):
        if any(self._matures.values()):
            if self.config.representative_allocation:
                # §4.2 variant: only the representative decides; it
                # imposes the allocation via an agreed-ordered message
                # and everyone (itself included) applies on delivery.
                if self.member_name == self.table.members[0]:
                    decided = self.table.copy()
                    self._fill_holes(decided)
                    self.client.multicast(
                        self.config.group_name,
                        AllocMsg(self.member_name, self.view.view_id, decided.as_dict()),
                    )
                return
            self._fill_holes(self.table)
            self.reallocations += 1
            self._m_reallocations.inc()
            self._apply_table()
        self.machine.fire("REALLOCATION_COMPLETE")
        self.trace("wackamole", "run", allocation=self.table.as_dict())
        self._maybe_start_balance_timer()

    def _on_alloc_msg(self, message):
        if self.view is None or message.view_id != self.view.view_id:
            return
        if self.machine.state not in (GATHER, RUN):
            return
        completing_gather = self.machine.state == GATHER
        for slot, owner in message.allocation.items():
            if slot in self.table.slots and (owner is None or owner in self.table.members):
                self.table.set_owner(slot, owner)
        self.reallocations += 1
        self._m_reallocations.inc()
        self._apply_table()
        if completing_gather:
            self.machine.fire("REALLOCATION_COMPLETE")
            self.trace("wackamole", "run", allocation=self.table.as_dict())
            self._maybe_start_balance_timer()
        else:
            # In RUN an imposed allocation is a Change_IPs application,
            # exactly like a BALANCE message (Figure 2 stays intact).
            self.machine.fire("BALANCE_MSG")

    def _apply_table(self):
        """Make local bindings match the (complete, agreed) table."""
        for slot in self.table.slots:
            owner = self.table.owner(slot)
            if owner == self.member_name:
                self.iface.acquire(slot)
            elif self.iface.owns(slot):
                self.iface.release(slot)

    # ------------------------------------------------------------------
    # BALANCE (Algorithm 3)

    def _maybe_start_balance_timer(self):
        if (
            self.config.balance_enabled
            and self.mature
            and self.view is not None
            and self.view.members
            and self.view.members[0] == self.member_name
        ):
            self._balance_timer.start(self.config.balance_timeout)

    def _on_balance_timeout(self):
        if self.machine.state != RUN or self.client is None or not self.mature:
            return
        # Atomic: compute, broadcast and return to RUN in one step; no
        # event can interleave (the paper's delay-event semantics).
        self.machine.fire("BALANCE_TIMEOUT")
        allocation = self._balance_target()
        if allocation != self.table.as_dict():
            message = BalanceMsg(self.member_name, self.view.view_id, allocation)
            self.client.multicast(self.config.group_name, message)
            self.balances_sent += 1
            self._m_balances_sent.inc()
            self.trace("wackamole", "balance_sent", allocation=allocation)
        self.machine.fire("BALANCE_COMPLETE")
        self._balance_timer.start(self.config.balance_timeout)

    def _on_balance_msg(self, message):
        if self.machine.state != RUN:
            # Algorithm 2 line 10-11: ignored during GATHER.
            return
        if self.view is None or message.view_id != self.view.view_id:
            return
        self.machine.fire("BALANCE_MSG")
        for slot, owner in message.allocation.items():
            if slot in self.table.slots and (owner is None or owner in self.table.members):
                self.table.set_owner(slot, owner)
        self._apply_table()
        self.balances_applied += 1
        self._m_balances_applied.inc()

    # ------------------------------------------------------------------
    # maturity bootstrap (§3.4)

    def _on_maturity_timeout(self):
        if self.mature or self.client is None:
            return
        self._become_mature("maturity timeout")
        if self.view is not None:
            self.client.multicast(
                self.config.group_name, MatureMsg(self.member_name, self.view.view_id)
            )

    def _on_mature_msg(self, message):
        if self.view is None or message.view_id != self.view.view_id:
            return
        self._matures[message.sender] = True
        if not self.mature:
            self._become_mature("mature notification")
        if self.machine.state == RUN and not self.table.is_complete():
            if self.config.representative_allocation:
                if self.member_name == self.table.members[0]:
                    decided = self.table.copy()
                    self._fill_holes(decided)
                    self.client.multicast(
                        self.config.group_name,
                        AllocMsg(self.member_name, self.view.view_id, decided.as_dict()),
                    )
                return
            # Deterministic at every member: same table, same message,
            # same order -> same allocation, no extra communication.
            self._fill_holes(self.table)
            self.reallocations += 1
            self._m_reallocations.inc()
            self._apply_table()
            self.trace("wackamole", "mature_reallocation", allocation=self.table.as_dict())
            self._maybe_start_balance_timer()

    def _become_mature(self, reason):
        self.mature = True
        self._maturity_timer.cancel()
        self.trace("wackamole", "mature", reason=reason)

    # ------------------------------------------------------------------
    # wire-level duplicate-claim handling (docs/FAULTS.md)

    def _slot_for_ip(self, ip):
        for group in self.config.vip_groups:
            if ip in group.addresses:
                return group.group_id
        return None

    def _on_arp_conflict(self, ip, claimant_mac):
        """A foreign ARP claim arrived for a VIP this host has bound.

        This is the network-level symptom of a duplicate VIP after an
        asymmetric partition heals: two members each believe they own
        the address, and the group-level GATHER may be unable to notice
        (each side is in its own view). Detection always counts and
        traces; with ``arp_conflict_resolution`` a holddown is armed
        and the conflict is re-examined once it expires (see
        :meth:`_resolve_arp_conflict` for who backs off).
        """
        if not self.alive:
            return
        slot = self._slot_for_ip(ip)
        if slot is None or not self.iface.owns(slot):
            return
        self.arp_conflicts_seen += 1
        if self._m_vip_conflicts is None:
            # Lazily created so conflict-free runs keep their metric
            # catalog (totals() reports zero-valued counters too).
            self._m_vip_conflicts = self._metrics.counter(
                "core.vip_conflicts", node=self.host.name
            )
        self._m_vip_conflicts.inc()
        self.trace("wackamole", "vip_conflict", slot=slot)
        if not self.config.arp_conflict_resolution:
            return
        if slot in self._conflict_holddowns:
            return
        self._conflict_holddowns.add(slot)
        self.after(
            self.config.arp_conflict_holddown,
            self._resolve_arp_conflict,
            slot,
            claimant_mac,
        )

    def _resolve_arp_conflict(self, slot, claimant_mac):
        self._conflict_holddowns.discard(slot)
        if not self.iface.owns(slot):
            # The group-level protocol (a reallocation or a balance)
            # moved the slot during the holddown; nothing to fight over.
            return
        if self.view is not None and len(self.view.members) > 1:
            # A multi-member view agreed we own this slot; the claimant
            # is outside our component (a deaf host mid-partition still
            # announces, and its frames reach us even though ours never
            # reach it). Releasing here would uncover the slot for every
            # client on our side — keep it and repair the caches its
            # announcements poisoned. The singleton-vs-singleton MAC
            # tie-break below handles the true split-brain case.
            self.arp_conflicts_resolved += 1
            self.trace("wackamole", "vip_conflict_keep", slot=slot)
            self.iface.reannounce(slot)
            return
        group = self.config.group(slot)
        nic = self.iface._nic_for(group.addresses[0])
        if claimant_mac.value < nic.mac.value:
            self.arp_conflicts_resolved += 1
            self.trace("wackamole", "vip_conflict_release", slot=slot)
            self.iface.release(slot)
            if self.table is not None and slot in self.table.slots:
                if self.table.owner(slot) == self.member_name:
                    self.table.set_owner(slot, None)
        else:
            # We win: make sure the segment's caches point back here.
            self.arp_conflicts_resolved += 1
            self.trace("wackamole", "vip_conflict_keep", slot=slot)
            self.iface.reannounce(slot)

    def _reannounce_vips(self):
        """Periodic gratuitous re-announcement of every held VIP."""
        if self.client is None:
            return
        self.iface.reannounce_all()

    # ------------------------------------------------------------------
    # self-stabilization (docs/FAULTS.md, "State corruption")

    def _stabilize_audit(self):
        """Periodic local invariant audit: table vs. actual bindings.

        In RUN the agreed allocation table and the interface bindings
        must agree slot-for-slot (``_apply_table`` establishes exactly
        that after every agreed message). Disagreement means local state
        was corrupted: a slot the table assigns here but the interface
        does not hold is re-acquired (rebind + ARP announce, repairing
        the caches too); a held slot the table assigns elsewhere is a
        physical duplicate and is released — the member every copy of
        the agreed table names as owner keeps defending it. Both repairs
        ride the existing acquire/release/announce paths.
        """
        if self.client is None or self.table is None or self.machine.state != RUN:
            return
        for slot in self.table.slots:
            owner = self.table.owner(slot)
            if owner == self.member_name and not self.iface.owns(slot):
                self._stabilize_repair("binding_lost", slot)
                self.iface.acquire(slot)
            elif owner != self.member_name and self.iface.owns(slot):
                self._stabilize_repair("binding_foreign", slot)
                self.iface.release(slot)

    def _stabilize_repair(self, invariant, slot):
        self.stabilize_repairs += 1
        self._metrics.inc("core.stabilize_repairs", node=self.host.name)
        self.trace("stabilize", "repair", invariant=invariant, slot=slot)

    # ------------------------------------------------------------------
    # ARP cache sharing (§5.2)

    def _share_arp_cache(self):
        if self.client is None or self.view is None:
            return
        entries = self.notifier.collect_entries()
        if entries:
            self.client.multicast(
                self.config.group_name, ArpShareMsg(self.member_name, entries)
            )

    # ------------------------------------------------------------------

    def status(self):
        """Snapshot for the admin channel and tests."""
        return {
            "host": self.host.name,
            "state": self.machine.state,
            "mature": self.mature,
            "connected": self.client is not None and self.client.connected,
            "view": self.view.view_id if self.view is not None else None,
            "members": list(self.view.members) if self.view is not None else [],
            "owned": list(self.iface.owned_slots()),
            "table": self.table.as_dict() if self.table is not None else {},
        }

    def _trace_transition(self, event, to_state):
        self._metrics.inc("core.transitions", node=self.host.name, state=to_state)
        self.trace("wackamole", "transition", trigger=event, state=to_state)

    def __repr__(self):
        return "WackamoleDaemon({}, {}, owns={})".format(
            self.host.name, self.machine.state, list(self.iface.owned_slots())
        )
