"""Reallocate_IPs(): deterministic hole-filling at the end of GATHER.

Every member runs this on an identical table (guaranteed by agreed
delivery of all STATE messages plus deterministic conflict
resolution), so all members compute the same assignment without any
further communication — the heart of the paper's Lemma 2.

The minimal obligation is covering unallocated addresses; this
implementation additionally spreads holes evenly (least-loaded member
first) and honours explicit preferences, both of which the paper
permits as long as the procedure stays deterministic.
"""


def reallocate_ips(table, preferences=None, weights=None):
    """Assign every hole in ``table``; returns {slot: member} for new grants.

    ``preferences`` maps member name -> tuple of preferred slot ids
    (collected from STATE messages). A hole goes to a member that
    prefers it when one exists; ties and the unpreferred remainder go
    to the relatively least-loaded member, broken by membership order.

    ``weights`` maps member name -> relative capacity (§3.4's
    load-based reallocation; also from STATE messages). The relative
    load of a member holding c slots is ``(c + 1) / weight`` for the
    next grant, so shares converge toward the weight proportions. With
    equal (or absent) weights this reduces to plain least-loaded.
    """
    preferences = preferences or {}
    weights = weights or {}
    counts = table.counts()
    assignments = {}

    def relative_load_after_grant(member):
        return (counts[member] + 1) / weights.get(member, 1.0)

    for slot in table.holes():
        preferring = [
            member for member in table.members if slot in preferences.get(member, ())
        ]
        candidates = preferring or list(table.members)
        chosen = min(
            candidates,
            key=lambda member: (relative_load_after_grant(member), table.position(member)),
        )
        table.set_owner(slot, chosen)
        counts[chosen] += 1
        assignments[slot] = chosen
    return assignments
