"""Balance_IPs(): the representative's load re-balancing (§3.4).

Triggered by a timeout in the RUN state and executed only by the
representative (first member of the uniquely ordered list). It
computes a new allocation from load-balancing considerations and the
explicit preferences passed along through state messages, and
broadcasts it in a BALANCE message. The procedure deliberately moves
as few addresses as possible: gratuitous moves would each cost an ARP
update cycle.
"""


def compute_balanced_allocation(members, slots, current, preferences=None, weights=None):
    """Return a balanced {slot: member} allocation.

    Starts from ``current`` (slot -> member or None), honours
    preferences first, then levels load by moving slots from the most
    to the least loaded member until the spread is at most one. All
    choices iterate sorted structures, keeping the result a pure
    function of its inputs.

    With ``weights`` (member -> relative capacity, §3.4's load-based
    reallocation) the levelling targets per-member *quotas*
    proportional to the weights instead of an even split; see
    :func:`weighted_quotas`.
    """
    members = list(members)
    if not members:
        return dict(current)
    if weights and len({weights.get(m, 1.0) for m in members}) > 1:
        return _weighted_balance(members, slots, current, preferences or {}, weights)
    preferences = preferences or {}
    allocation = {}
    for slot in slots:
        owner = current.get(slot)
        allocation[slot] = owner if owner in members else None

    # Preference pass: a slot moves to the first member (in membership
    # order) that explicitly prefers it.
    for slot in slots:
        for member in members:
            if slot in preferences.get(member, ()):
                allocation[slot] = member
                break

    # Fill anything still uncovered, least-loaded first.
    counts = {member: 0 for member in members}
    for owner in allocation.values():
        if owner is not None:
            counts[owner] += 1
    for slot in slots:
        if allocation[slot] is None:
            chosen = min(members, key=lambda m: (counts[m], members.index(m)))
            allocation[slot] = chosen
            counts[chosen] += 1

    # Levelling pass: move non-preferred slots from the most loaded to
    # the least loaded member until the imbalance is at most one.
    def preferred_by_owner(slot):
        return slot in preferences.get(allocation[slot], ())

    while True:
        heavy = max(members, key=lambda m: (counts[m], -members.index(m)))
        light = min(members, key=lambda m: (counts[m], members.index(m)))
        if counts[heavy] - counts[light] <= 1:
            break
        movable = [
            slot
            for slot in slots
            if allocation[slot] == heavy and not preferred_by_owner(slot)
        ]
        if not movable:
            break
        slot = movable[0]
        allocation[slot] = light
        counts[heavy] -= 1
        counts[light] += 1
    return allocation


def weighted_quotas(members, total, weights):
    """Integer slot quotas proportional to weights (largest remainder).

    Deterministic: remainders tie-break by membership order. The
    quotas sum to ``total`` exactly.
    """
    total_weight = sum(weights.get(member, 1.0) for member in members)
    ideal = {
        member: total * weights.get(member, 1.0) / total_weight for member in members
    }
    quotas = {member: int(ideal[member]) for member in members}
    leftover = total - sum(quotas.values())
    by_remainder = sorted(
        members,
        key=lambda member: (-(ideal[member] - quotas[member]), members.index(member)),
    )
    for member in by_remainder[:leftover]:
        quotas[member] += 1
    return quotas


def _weighted_balance(members, slots, current, preferences, weights):
    """Quota-targeted balancing with minimal movement."""
    quotas = weighted_quotas(members, len(slots), weights)
    allocation = {}
    for slot in slots:
        owner = current.get(slot)
        allocation[slot] = owner if owner in members else None

    # Preferences pin slots first (they count against the quota).
    for slot in slots:
        for member in members:
            if slot in preferences.get(member, ()):
                allocation[slot] = member
                break

    counts = {member: 0 for member in members}
    for owner in allocation.values():
        if owner is not None:
            counts[owner] += 1

    def under_quota():
        eligible = [m for m in members if counts[m] < quotas[m]]
        return min(eligible, key=members.index) if eligible else None

    # Fill holes into under-quota members first.
    for slot in slots:
        if allocation[slot] is None:
            target = under_quota() or min(
                members, key=lambda m: (counts[m] / weights.get(m, 1.0), members.index(m))
            )
            allocation[slot] = target
            counts[target] += 1

    # Move non-preferred surplus from over-quota to under-quota members.
    for member in members:
        while counts[member] > quotas[member]:
            target = under_quota()
            if target is None:
                break
            movable = [
                slot
                for slot in slots
                if allocation[slot] == member
                and slot not in preferences.get(member, ())
            ]
            if not movable:
                break
            slot = movable[0]
            allocation[slot] = target
            counts[member] -= 1
            counts[target] += 1
    return allocation
