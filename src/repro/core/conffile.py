"""Parser for wackamole.conf-style configuration files.

The real Wackamole is configured by a small declarative file; this
module accepts the same vocabulary (slightly simplified) and produces
a :class:`~repro.core.config.WackamoleConfig` plus the daemon-level
settings::

    # wackamole.conf
    Spread = 4803
    Group = wack1
    Mature = 5s
    Balance {
        Interval = 4s
    }
    Prefer 192.168.0.100
    VirtualInterfaces {
        { eth0:192.168.0.100/32 }
        { eth0:192.168.0.101/32 }
        { eth0:10.0.0.1/32 eth1:192.168.0.1/32 }   # indivisible set
    }
    Notify {
        eth0:192.168.0.1/32
        arp-cache
    }

Interface prefixes (``eth0:``) and mask suffixes (``/32``) are accepted
for compatibility and ignored: the simulation binds addresses by
subnet. ``arp-cache`` inside ``Notify`` enables the §5.2 periodic
ARP-cache exchange.
"""

from repro.core.config import VipGroup, WackamoleConfig


class ConfigError(Exception):
    """The configuration text is malformed."""


class ParsedConfig:
    """Result of parsing: the Wackamole config plus daemon settings."""

    def __init__(self, wackamole, spread_port, group_name):
        self.wackamole = wackamole
        self.spread_port = spread_port
        self.group_name = group_name

    def __repr__(self):
        return "ParsedConfig(group={}, port={}, {} vip groups)".format(
            self.group_name, self.spread_port, len(self.wackamole.vip_groups)
        )


def parse_wackamole_conf(text):
    """Parse configuration text; returns a :class:`ParsedConfig`."""
    tokens = _tokenize(text)
    state = {
        "spread_port": 4803,
        "group": "wackamole",
        "mature": 5.0,
        "balance_enabled": False,
        "balance_interval": 10.0,
        "prefer": [],
        "vip_groups": [],
        "notify_ips": [],
        "arp_share": False,
    }
    index = 0
    while index < len(tokens):
        token = tokens[index].lower()
        if token == "spread":
            state["spread_port"], index = _read_assignment(tokens, index, int)
        elif token == "group":
            state["group"], index = _read_assignment(tokens, index, str)
        elif token == "control":
            _, index = _read_assignment(tokens, index, str)  # accepted, unused
        elif token == "mature":
            state["mature"], index = _read_assignment(tokens, index, _seconds)
        elif token == "arp-cache":
            _, index = _read_assignment(tokens, index, _seconds)  # accepted
        elif token == "prefer":
            index += 1
            if index >= len(tokens):
                raise ConfigError("Prefer needs an address or None")
            if tokens[index].lower() != "none":
                state["prefer"].append(_address(tokens[index]))
            index += 1
        elif token == "balance":
            index = _parse_balance(tokens, index, state)
        elif token == "virtualinterfaces":
            index = _parse_virtual_interfaces(tokens, index, state)
        elif token == "notify":
            index = _parse_notify(tokens, index, state)
        else:
            raise ConfigError("unexpected token {!r}".format(tokens[index]))

    if not state["vip_groups"]:
        raise ConfigError("no VirtualInterfaces section")
    # Prefer lines name addresses; resolve each to its containing group.
    prefer_ids = []
    for preferred in state["prefer"]:
        group = _group_containing(state["vip_groups"], preferred)
        if group is None:
            raise ConfigError("Prefer lists unknown address: {}".format(preferred))
        if group.group_id not in prefer_ids:
            prefer_ids.append(group.group_id)
    state["prefer"] = prefer_ids
    wackamole = WackamoleConfig(
        state["vip_groups"],
        group_name=state["group"],
        balance_enabled=state["balance_enabled"],
        balance_timeout=state["balance_interval"],
        maturity_timeout=state["mature"],
        prefer=tuple(state["prefer"]),
        notify_ips=tuple(state["notify_ips"]),
        arp_share_interval=5.0 if state["arp_share"] else 0.0,
    )
    return ParsedConfig(wackamole, state["spread_port"], state["group"])


# ----------------------------------------------------------------------
# section parsers


def _parse_balance(tokens, index, state):
    index = _expect(tokens, index + 1, "{")
    state["balance_enabled"] = True
    while index < len(tokens) and tokens[index] != "}":
        key = tokens[index].lower()
        if key == "interval":
            state["balance_interval"], index = _read_assignment(tokens, index, _seconds)
        elif key == "acquisitionsperround":
            _, index = _read_assignment(tokens, index, str)  # accepted, unused
        else:
            raise ConfigError("unexpected token {!r} in Balance".format(tokens[index]))
    return _expect(tokens, index, "}")


def _parse_virtual_interfaces(tokens, index, state):
    index = _expect(tokens, index + 1, "{")
    while index < len(tokens) and tokens[index] != "}":
        if tokens[index] != "{":
            raise ConfigError(
                "expected '{{' starting a VIP group, got {!r}".format(tokens[index])
            )
        index += 1
        addresses = []
        while index < len(tokens) and tokens[index] != "}":
            addresses.append(_address(tokens[index]))
            index += 1
        index = _expect(tokens, index, "}")
        if not addresses:
            raise ConfigError("empty VIP group")
        group_id = addresses[0] if len(addresses) == 1 else "+".join(addresses)
        state["vip_groups"].append(VipGroup(group_id, addresses))
    return _expect(tokens, index, "}")


def _parse_notify(tokens, index, state):
    index = _expect(tokens, index + 1, "{")
    while index < len(tokens) and tokens[index] != "}":
        if tokens[index].lower() == "arp-cache":
            state["arp_share"] = True
        else:
            state["notify_ips"].append(_address(tokens[index]))
        index += 1
    return _expect(tokens, index, "}")


# ----------------------------------------------------------------------
# lexing and primitives


def _group_containing(groups, address):
    from repro.net.addresses import IPAddress

    target = IPAddress(address)
    for group in groups:
        if target in group.addresses:
            return group
    return None


def _tokenize(text):
    tokens = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        line = line.replace("{", " { ").replace("}", " } ").replace("=", " = ")
        tokens.extend(line.split())
    return tokens


def _read_assignment(tokens, index, convert):
    if index + 2 >= len(tokens) or tokens[index + 1] != "=":
        raise ConfigError("expected '{} = <value>'".format(tokens[index]))
    try:
        value = convert(tokens[index + 2])
    except ValueError as exc:
        raise ConfigError(
            "bad value for {}: {}".format(tokens[index], exc)
        ) from exc
    return value, index + 3


def _expect(tokens, index, literal):
    if index >= len(tokens) or tokens[index] != literal:
        found = tokens[index] if index < len(tokens) else "<end>"
        raise ConfigError("expected {!r}, got {!r}".format(literal, found))
    return index + 1


def _seconds(token):
    return float(token[:-1]) if token.endswith("s") else float(token)


def _address(token):
    """'eth0:192.168.0.1/32' -> '192.168.0.1' (validated)."""
    from repro.net.addresses import IPAddress

    text = token.rsplit(":", 1)[-1].split("/", 1)[0]
    try:
        return str(IPAddress(text))
    except ValueError as exc:
        raise ConfigError("bad address {!r}: {}".format(token, exc)) from exc
