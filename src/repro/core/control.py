"""Administrative control channel (§4.2).

The real Wackamole added "an input channel to allow administrative
control of a cluster's behavior". This is that channel's command
surface: inspect status, adjust preferences, hand off an address, and
take a daemon offline gracefully or abruptly.
"""


class AdminControl:
    """Operator commands against one Wackamole daemon."""

    def __init__(self, daemon):
        self.daemon = daemon

    def status(self):
        """Current state, view, maturity and owned addresses."""
        return self.daemon.status()

    def list_vips(self):
        """{slot id: list of addresses} for every configured VIP group."""
        return {
            group.group_id: [str(a) for a in group.addresses]
            for group in self.daemon.config.vip_groups
        }

    def set_preferences(self, slot_ids):
        """Replace this server's preference list (takes effect at the
        next view change, when preferences travel in STATE messages)."""
        self.daemon.config = self.daemon.config.copy_for(prefer=tuple(slot_ids))
        self.daemon.iface.config = self.daemon.config
        self.daemon.notifier.config = self.daemon.config

    def release_vip(self, slot_id):
        """Drop one VIP group locally; it stays uncovered until the next
        reallocation or balance round picks it up."""
        self.daemon.iface.release(slot_id)
        if self.daemon.table is not None and slot_id in self.daemon.table.slots:
            if self.daemon.table.owner(slot_id) == self.daemon.member_name:
                self.daemon.table.release(slot_id)

    def metrics(self):
        """Live metrics rows scoped to this daemon's host.

        Reads the simulation's :class:`~repro.obs.metrics.MetricsRegistry`
        and keeps instruments whose node is the host itself or one of
        its components (``web1``, ``web1.cluster``, ...), sorted.
        """
        host = self.daemon.host
        prefix = host.name + "."
        return [
            (name, node, labels, instrument)
            for name, node, labels, instrument in host.sim.metrics.collect()
            if node == host.name or node.startswith(prefix)
        ]

    def shutdown(self):
        """Graceful exit: release everything, lightweight group leave."""
        self.daemon.shutdown()

    def kill(self):
        """Abrupt stop (testing aid): bindings remain until others take over."""
        self.daemon.stop()


class AdminConsole:
    """Line-oriented command surface over :class:`AdminControl`.

    The real Wackamole exposes its input channel as a socket an
    operator (or `wackatrl`) talks to; this is the equivalent command
    parser. Commands::

        status                  one-line daemon summary
        table                   current VIP allocation
        vips                    configured VIP groups
        owned                   locally bound VIP groups
        release <slot>          drop one VIP group locally
        prefer <slot> [...]     replace the preference list
        metrics [filter]        live metrics for this host
        shutdown                graceful exit
        help                    list commands
    """

    def __init__(self, daemon):
        self.control = AdminControl(daemon)

    def execute(self, line):
        """Run one command line; returns the textual response."""
        parts = line.strip().split()
        if not parts:
            return ""
        command, arguments = parts[0].lower(), parts[1:]
        handler = getattr(self, "_cmd_{}".format(command), None)
        if handler is None:
            return "error: unknown command {!r} (try 'help')".format(command)
        try:
            return handler(arguments)
        except (KeyError, ValueError) as exc:
            return "error: {}".format(exc)

    # ------------------------------------------------------------------

    def _cmd_help(self, arguments):
        return (
            "commands: status | table | vips | owned | release <slot> | "
            "prefer <slot> [...] | metrics [filter] | shutdown | help"
        )

    def _cmd_status(self, arguments):
        status = self.control.status()
        return (
            "host={host} state={state} mature={mature} connected={connected} "
            "members={count} owned={owned}".format(
                host=status["host"],
                state=status["state"],
                mature=status["mature"],
                connected=status["connected"],
                count=len(status["members"]),
                owned=",".join(status["owned"]) or "-",
            )
        )

    def _cmd_table(self, arguments):
        table = self.control.status()["table"]
        if not table:
            return "(no allocation)"
        return "\n".join(
            "{} -> {}".format(slot, owner or "(uncovered)")
            for slot, owner in table.items()
        )

    def _cmd_vips(self, arguments):
        groups = self.control.list_vips()
        return "\n".join(
            "{}: {}".format(slot, " ".join(addresses))
            for slot, addresses in groups.items()
        )

    def _cmd_owned(self, arguments):
        owned = self.control.status()["owned"]
        return ",".join(owned) if owned else "-"

    def _cmd_release(self, arguments):
        if len(arguments) != 1:
            return "usage: release <slot>"
        # Validate against the configuration before touching anything.
        self.control.daemon.config.group(arguments[0])
        self.control.release_vip(arguments[0])
        return "released {}".format(arguments[0])

    def _cmd_prefer(self, arguments):
        self.control.set_preferences(arguments)
        return "preferences: {}".format(" ".join(arguments) or "-")

    def _cmd_metrics(self, arguments):
        rows = self.control.metrics()
        if arguments:
            needle = arguments[0]
            rows = [row for row in rows if needle in row[0]]
        if not rows:
            return "(no metrics)"
        lines = []
        for name, node, labels, instrument in rows:
            label_text = "".join(
                "[{}={}]".format(key, value) for key, value in labels
            )
            if instrument.kind == "timeseries":
                summary = instrument.summary()
                value = "last={} avg={}".format(summary["last"], summary["time_avg"])
            else:
                value = str(instrument.value)
            lines.append("{}{} ({}) = {}".format(name, label_text, node, value))
        return "\n".join(lines)

    def _cmd_shutdown(self, arguments):
        self.control.shutdown()
        return "shutting down"
