"""ResolveConflicts(): the deterministic conflict-drop rule.

After a merge of previously partitioned components every component
covers the full VIP set, so overlaps are expected. The paper's rule
(proof of Lemma 1): when two members claim the same address, the one
appearing *earlier* in the uniquely ordered membership list releases
it; the later claimant keeps covering. Because the rule depends only
on the membership order, every member resolves every conflict
identically, regardless of message arrival order.
"""


def resolve_claim(table, slot, claimant):
    """Record that ``claimant`` covers ``slot``; resolve any conflict.

    Returns ``(winner, loser)`` where ``loser`` is None when there was
    no conflict. The table is updated to reflect the winner.
    """
    current = table.owner(slot)
    if current is None or current == claimant:
        table.set_owner(slot, claimant)
        return claimant, None
    if table.position(claimant) > table.position(current):
        winner, loser = claimant, current
    else:
        winner, loser = current, claimant
    table.set_owner(slot, winner)
    return winner, loser
