"""Rendezvous (HRW) VIP placement — the scale-tier placement strategy.

The paper's BALANCE pass (:mod:`repro.core.balance`) levels load by
*moving* slots between members, which recomputes the world on every
membership change: O(N·V) work and, worse, O(V) gratuitous ARP cycles
when the membership merely shrinks by one. Rendezvous hashing (highest
random weight, Thaler & Ravishankar) gives the minimal-disruption
property instead: every slot independently belongs to the member with
the highest deterministic ``score(slot, member)``, so

* removing a member remaps exactly the slots that member owned
  (expected V/N of them) and nothing else;
* adding a member steals only the slots it now scores highest on
  (again expected V/(N+1)), each moving *to* the new member.

Scores are pure functions of the (slot, member) name pair — no state,
no coordination — so every daemon computes the identical allocation
from the same membership, exactly the deterministic-procedure
obligation of the paper's Lemma 2.

Two integration points mirror the linear strategy's entry points:

* :func:`reallocate_ips_rendezvous` — hole-filling at the end of
  GATHER (counterpart of :func:`repro.core.reallocate.reallocate_ips`);
* :func:`compute_rendezvous_allocation` — the RUN-state target
  allocation (counterpart of
  :func:`repro.core.balance.compute_balanced_allocation`).

Both honour explicit preferences first, like the linear code paths, so
the two strategies are interchangeable behind
``WackamoleConfig(placement_strategy=...)``.

For large clusters :class:`RendezvousMap` maintains an allocation
incrementally: a single join or leave costs O(V) score comparisons
instead of the O(V·N) full recomputation.
"""

import hashlib
import math

PLACEMENT_LINEAR = "linear"
PLACEMENT_RENDEZVOUS = "rendezvous"
PLACEMENT_STRATEGIES = (PLACEMENT_LINEAR, PLACEMENT_RENDEZVOUS)

_MASK64 = (1 << 64) - 1
_PHI64 = 0x9E3779B97F4A7C15


def _key64(name):
    """Stable 64-bit digest of a name (independent of PYTHONHASHSEED)."""
    digest = hashlib.blake2b(str(name).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _mix64(x):
    """SplitMix64 finalizer: full-avalanche 64-bit mix."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def hrw_score(slot_key, member_key):
    """The 64-bit rendezvous score for a (slot, member) key pair.

    Keys are :func:`_key64` digests; combining digests with a cheap
    integer mixer keeps the V·N score matrix out of ``hashlib`` — only
    V + N real hashes are ever computed.
    """
    return _mix64(slot_key ^ ((member_key + _PHI64) & _MASK64))


def _weighted_score(raw_score, weight):
    """Weighted-rendezvous transform: ``-w / ln(u)``, u uniform in (0,1).

    Monotone in the raw score, so with equal weights the weighted
    argmax equals the unweighted one; unequal weights skew each
    member's expected share proportionally (Wang & Ravishankar).
    """
    u = (raw_score + 0.5) / 18446744073709551616.0
    return -weight / math.log(u)


def rendezvous_owner(slot, members, weights=None):
    """The member owning ``slot`` under HRW, or None for no members."""
    members = list(members)
    if not members:
        return None
    slot_key = _key64(slot)
    if weights and len({weights.get(m, 1.0) for m in members}) > 1:
        return max(
            members,
            key=lambda m: (_weighted_score(hrw_score(slot_key, _key64(m)), weights.get(m, 1.0)), m),
        )
    return max(members, key=lambda m: (hrw_score(slot_key, _key64(m)), m))


def rendezvous_allocation(members, slots, weights=None):
    """The full {slot: member} HRW allocation (pure function)."""
    members = list(members)
    if not members:
        return {slot: None for slot in slots}
    member_keys = [(m, _key64(m)) for m in members]
    weighted = bool(weights) and len({weights.get(m, 1.0) for m in members}) > 1
    allocation = {}
    for slot in slots:
        slot_key = _key64(slot)
        if weighted:
            best = max(
                member_keys,
                key=lambda mk: (
                    _weighted_score(hrw_score(slot_key, mk[1]), weights.get(mk[0], 1.0)),
                    mk[0],
                ),
            )
        else:
            best = max(member_keys, key=lambda mk: (hrw_score(slot_key, mk[1]), mk[0]))
        allocation[slot] = best[0]
    return allocation


def _preference_pins(members, slots, preferences):
    """{slot: member} for slots pinned by explicit preferences.

    Same rule as the linear strategy: a slot goes to the first member
    in membership order that prefers it.
    """
    pins = {}
    if not preferences:
        return pins
    for slot in slots:
        for member in members:
            if slot in preferences.get(member, ()):
                pins[slot] = member
                break
    return pins


def compute_rendezvous_allocation(members, slots, current, preferences=None, weights=None):
    """The RUN-state target allocation under the rendezvous strategy.

    Every slot belongs to its HRW owner except slots pinned by explicit
    preferences. ``current`` is accepted for signature compatibility
    with :func:`repro.core.balance.compute_balanced_allocation`; the
    target is independent of it — that independence is what makes a
    membership change move only the departed member's slots.
    """
    members = list(members)
    if not members:
        return dict(current)
    allocation = rendezvous_allocation(members, slots, weights)
    for slot, member in _preference_pins(members, slots, preferences or {}).items():
        allocation[slot] = member
    return allocation


def reallocate_ips_rendezvous(table, preferences=None, weights=None):
    """Fill every hole in ``table`` with its HRW owner.

    Counterpart of :func:`repro.core.reallocate.reallocate_ips`:
    mutates ``table`` and returns {slot: member} for the new grants.
    Preferring members win their holes first (membership order), the
    rest go to the rendezvous owner — so after a member death exactly
    the dead member's slots (the holes) move, each to the survivor
    that scores highest on it.
    """
    preferences = preferences or {}
    members = list(table.members)
    assignments = {}
    holes = list(table.holes())
    if not holes or not members:
        return assignments
    pins = _preference_pins(members, holes, preferences)
    for slot in holes:
        chosen = pins.get(slot)
        if chosen is None:
            chosen = rendezvous_owner(slot, members, weights)
        table.set_owner(slot, chosen)
        assignments[slot] = chosen
    return assignments


class RendezvousMap:
    """Incrementally maintained HRW allocation over a fixed slot set.

    ``allocation_for(members)`` returns the {slot: member} allocation
    for any membership; consecutive calls are answered from a small
    memo, and a new membership is computed as a delta from the closest
    cached one: a leave rescores only the departed members' slots, a
    join compares every slot against the joiners only — O(V) instead
    of O(V·N). The result is always identical to
    :func:`rendezvous_allocation` (a property the test suite asserts).

    The map is placement *mechanism* only — it never observes who is
    alive; callers feed it memberships from their own view protocol.
    """

    _MEMO_LIMIT = 8

    def __init__(self, slots):
        self.slots = tuple(slots)
        self._slot_keys = {slot: _key64(slot) for slot in self.slots}
        self._member_keys = {}
        # members tuple -> (allocation dict, best-score dict); insertion
        # ordered, oldest evicted first.
        self._memo = {}
        # members tuple -> {member: sorted slot tuple} (same eviction).
        self._index_memo = {}

    def _member_key(self, member):
        key = self._member_keys.get(member)
        if key is None:
            key = _key64(member)
            self._member_keys[member] = key
        return key

    def allocation_for(self, members):
        """The HRW allocation for ``members`` (unweighted), as a dict copy."""
        canonical = tuple(sorted(members))
        cached = self._memo.get(canonical)
        if cached is not None:
            return dict(cached[0])
        allocation, best = self._compute(canonical)
        if len(self._memo) >= self._MEMO_LIMIT:
            oldest = next(iter(self._memo))
            del self._memo[oldest]
        self._memo[canonical] = (allocation, best)
        return dict(allocation)

    def owned_by(self, members, member):
        """Sorted tuple of slots ``member`` owns under ``members``."""
        return self.owned_index_for(members).get(member, ())

    def owned_index_for(self, members):
        """{member: sorted slot tuple} for ``members``, memoized.

        Shared by every node applying the same view, so a cluster-wide
        view change inverts the allocation once, not once per node.
        """
        canonical = tuple(sorted(members))
        cached = self._index_memo.get(canonical)
        if cached is not None:
            return cached
        allocation = self.allocation_for(canonical)
        index = {}
        for slot in self.slots:
            owner = allocation[slot]
            if owner is not None:
                index.setdefault(owner, []).append(slot)
        index = {member: tuple(sorted(slots)) for member, slots in index.items()}
        if len(self._index_memo) >= self._MEMO_LIMIT:
            oldest = next(iter(self._index_memo))
            del self._index_memo[oldest]
        self._index_memo[canonical] = index
        return index

    # ------------------------------------------------------------------

    def _compute(self, canonical):
        base = self._closest_base(canonical)
        if base is None:
            return self._full(canonical)
        base_members, (base_alloc, base_best) = base
        removed = sorted(set(base_members) - set(canonical))
        added = sorted(set(canonical) - set(base_members))
        # Delta cost: every slot is checked against each joiner, and
        # slots orphaned by leavers are rescored over the survivors.
        # A wildly different membership is cheaper to recompute whole.
        if (len(added) + len(removed)) * 4 > len(canonical):
            return self._full(canonical)
        allocation = dict(base_alloc)
        best = dict(base_best)
        if removed:
            gone = set(removed)
            survivors = [(m, self._member_key(m)) for m in canonical]
            for slot in self.slots:
                if allocation[slot] in gone:
                    allocation[slot], best[slot] = self._score_slot(slot, survivors)
        for member in added:
            member_key = self._member_key(member)
            slot_keys = self._slot_keys
            for slot in self.slots:
                score = hrw_score(slot_keys[slot], member_key)
                contender = (score, member)
                if contender > best[slot]:
                    best[slot] = contender
                    allocation[slot] = member
        return allocation, best

    def _closest_base(self, canonical):
        """The cached membership sharing the most members, or None."""
        target = set(canonical)
        winner = None
        overlap = -1
        for cached_members in self._memo:
            shared = len(target.intersection(cached_members))
            if shared > overlap:
                overlap = shared
                winner = cached_members
        if winner is None:
            return None
        return winner, self._memo[winner]

    def _full(self, canonical):
        member_keys = [(m, self._member_key(m)) for m in canonical]
        allocation = {}
        best = {}
        for slot in self.slots:
            allocation[slot], best[slot] = self._score_slot(slot, member_keys)
        return allocation, best

    def _score_slot(self, slot, member_keys):
        """(owner, (score, owner)) for one slot over scored members."""
        if not member_keys:
            return None, (-1, "")
        slot_key = self._slot_keys[slot]
        best_score = -1
        best_member = None
        for member, member_key in member_keys:
            score = hrw_score(slot_key, member_key)
            if score > best_score or (score == best_score and member > best_member):
                best_score = score
                best_member = member
        return best_member, (best_score, best_member)
