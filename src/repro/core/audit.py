"""Coverage auditor: checks the paper's correctness properties.

Property 1 (§3.1): every VIP is covered *exactly once* by a server in
each maximal connected component whose servers are in the RUN state.
The auditor computes the real connected components from the simulated
network (host liveness, NIC state, LAN partition groups) and inspects
actual NIC bindings — ground truth, not protocol state — so a protocol
bug cannot hide from it.
"""


class CoverageViolation:
    """One detected violation of Property 1."""

    __slots__ = ("component", "slot", "covering", "kind")

    def __init__(self, component, slot, covering, kind):
        self.component = tuple(component)
        self.slot = slot
        self.covering = tuple(covering)
        self.kind = kind

    def __repr__(self):
        return "CoverageViolation({} slot={} covered_by={})".format(
            self.kind, self.slot, list(self.covering)
        )


class CoverageAuditor:
    """Audits a set of Wackamole daemons against Property 1."""

    def __init__(self, daemons):
        self.daemons = list(daemons)

    def components(self):
        """Maximal sets of live daemons able to communicate right now.

        Fully deterministic: discovery proceeds in host-name order, so
        the component list (and therefore violation ordering) is a
        pure function of cluster state — required for repro.check's
        byte-identical replay across processes.
        """
        remaining = sorted(
            (d for d in self.daemons if self._communicating(d)),
            key=lambda d: d.host.name,
        )
        components = []
        while remaining:
            seed = remaining.pop(0)
            component = [seed]
            frontier = [seed]
            while frontier:
                current = frontier.pop()
                for other in list(remaining):
                    if self._connected(current, other):
                        remaining.remove(other)
                        component.append(other)
                        frontier.append(other)
            components.append(sorted(component, key=lambda d: d.host.name))
        return components

    def check(self):
        """Return all Property 1 violations across stable components.

        A component is audited when every member is in the RUN state
        and at least one member is mature (the property presumes
        normal operation; an immature booting cluster covers nothing
        by design, §3.4).
        """
        from repro.core.state import RUN

        violations = []
        for component in self.components():
            if not all(d.machine.state == RUN for d in component):
                continue
            if not any(d.mature for d in component):
                continue
            for slot in self._slots(component):
                covering = [
                    d.host.name for d in component if self._covers(d, slot)
                ]
                if len(covering) == 0:
                    violations.append(
                        CoverageViolation(
                            [d.host.name for d in component], slot, covering, "uncovered"
                        )
                    )
                elif len(covering) > 1:
                    violations.append(
                        CoverageViolation(
                            [d.host.name for d in component], slot, covering, "duplicate"
                        )
                    )
        return violations

    def assert_ok(self):
        """Raise AssertionError with details on any violation."""
        violations = self.check()
        if violations:
            raise AssertionError("coverage violations: {}".format(violations))

    def check_by_view(self):
        """Property 1 relative to *agreed membership* (always holds).

        :meth:`check` audits physical connectivity, which lags behind
        the protocol during failure-detection windows — the paper's
        availability interruption is exactly that lag. This variant
        groups daemons by the group view they have installed; whenever
        *all* members of a view are alive, RUN, mature, **and still
        mutually connected**, coverage among them must be exact at
        every instant.

        The connectivity qualifier is load-bearing, found by a
        repro.check campaign: a representative whose interface just
        went dark still holds the old view for one failure-detection
        window and can fire its balance timer inside it. Its BALANCE
        message is delivered only by its local GCS daemon (there is no
        uniform delivery across a partition), so it may re-acquire
        addresses the others still hold — a transient duplicate that
        is inherent §4.2 detection-window behaviour, not a protocol
        bug. Views that are no longer physically intact are therefore
        skipped; persistent duplicates inside healthy views (real
        bugs) are still caught.

        The dual qualifier covers merges: a *singleton* view whose
        daemon can already receive frames from daemons outside it is a
        stale view awaiting a membership merge (a healed partition, a
        rejoin delayed by burst loss, or a one-way hearing-only link
        under nested asymmetry). During that window the ARP-level
        duplicate-VIP resolver may hand the singleton's addresses back
        to the majority side *before* the merge installs a new view —
        that early release is the repair working as designed, so the
        stale singleton's obligations are not enforced. Isolated
        singletons (a true partition of one) are still audited in full.
        """
        from repro.core.state import RUN

        by_view = {}
        for daemon in self.daemons:
            if not daemon.alive or daemon.view is None:
                continue
            if daemon.machine.state != RUN or not daemon.mature:
                continue
            key = (daemon.view.view_id, daemon.view.members)
            by_view.setdefault(key, []).append(daemon)
        violations = []
        # Sorted so violation order is a pure function of cluster state,
        # not of the (arrival-ordered) grouping dict above.
        for key in sorted(by_view):
            (_view_id, members), daemons = key, by_view[key]
            if len(daemons) != len(members):
                continue
            if not all(self._communicating(d) for d in daemons):
                continue
            if any(
                not self._connected(daemons[0], other) for other in daemons[1:]
            ):
                continue
            if len(daemons) == 1 and self._sees_outsiders(daemons[0]):
                continue
            if getattr(daemons[0].spread.lan, "link_model", None) is not None:
                # A burst-loss channel is installed on the segment: the
                # GCS may take arbitrarily long to deliver an agreed
                # message at a particular member, so the release-here /
                # acquire-there window of a reconfiguration can stretch
                # past any sampling interval. Instantaneous exactness
                # is not a sound invariant on a lossy segment; eventual
                # convergence is still enforced once the loss clears.
                continue
            for slot in self._slots(daemons):
                covering = [
                    d.host.name for d in daemons if self._covers_logically(d, slot)
                ]
                if len(covering) != 1:
                    kind = "uncovered" if not covering else "duplicate"
                    violations.append(
                        CoverageViolation(
                            [d.host.name for d in daemons], slot, covering, kind
                        )
                    )
        return violations

    def duplicate_coverage(self):
        """Slots currently bound by more than one live daemon, globally.

        Unlike :meth:`check` this ignores component boundaries; it is
        used to measure how long double coverage persists inside one
        component during reconfiguration (the §3.4 eager-drop metric).
        """
        duplicates = {}
        for component in self.components():
            for slot in self._slots(component):
                covering = [d.host.name for d in component if self._covers(d, slot)]
                if len(covering) > 1:
                    duplicates[slot] = covering
        return duplicates

    # ------------------------------------------------------------------

    def _sees_outsiders(self, daemon):
        """Can this daemon currently *receive* from any daemon outside
        its own installed view? (Merge- or repair-pending indicator.)

        One-way receivability is deliberate: under nested asymmetric
        blocks a singleton may hear a peer it cannot answer, and the
        frames it hears are exactly what drives the ARP-level conflict
        repair that hands its addresses back. A singleton that hears
        nothing foreign can never release this way, so auditing it in
        full stays sound.
        """
        members = daemon.view.members
        for other in self.daemons:
            if other is daemon or not self._communicating(other):
                continue
            if other.member_name in members:
                continue
            if self._reaches(other, daemon):
                return True
        return False

    @staticmethod
    def _communicating(daemon):
        host = daemon.host
        if not host.alive or not daemon.alive:
            return False
        nic = host.nic_on(daemon.spread.lan)
        return nic is not None and nic.up

    @staticmethod
    def _connected(daemon_a, daemon_b):
        lan = daemon_a.spread.lan
        if daemon_b.spread.lan is not lan:
            return False
        nic_a = daemon_a.host.nic_on(lan)
        nic_b = daemon_b.host.nic_on(lan)
        return lan.connected(nic_a, nic_b)

    @staticmethod
    def _reaches(daemon_src, daemon_dst):
        lan = daemon_src.spread.lan
        if daemon_dst.spread.lan is not lan:
            return False
        nic_src = daemon_src.host.nic_on(lan)
        nic_dst = daemon_dst.host.nic_on(lan)
        return lan.reaches(nic_src, nic_dst)

    @staticmethod
    def _slots(component):
        slots = []
        for daemon in component:
            for slot in daemon.config.slot_ids():
                if slot not in slots:
                    slots.append(slot)
        return slots

    @staticmethod
    def _covers(daemon, slot):
        try:
            group = daemon.config.group(slot)
        except KeyError:
            return False
        return all(daemon.host.owns_ip(address) for address in group.addresses)

    @staticmethod
    def _covers_logically(daemon, slot):
        """Binding-level coverage, ignoring interface up/down state.

        Used by the view-relative check: a daemon that bound an address
        on a (currently dark) interface still *holds* it as far as the
        protocol's obligations are concerned.
        """
        try:
            group = daemon.config.group(slot)
        except KeyError:
            return False
        for address in group.addresses:
            if not any(nic.owns_ip(address) for nic in daemon.host.nics):
                return False
        return True
