"""Wackamole's group messages (sent over agreed-ordered multicast).

Every message carries the group-view identifier of the view it was
initiated in; receivers discard messages from other views (Algorithm 2,
line 1 — "only STATE MSGs generated in the current view are
considered").
"""


class StateMsg:
    """A member's local knowledge, sent on every view change.

    ``owned`` — ids of the VIP groups this member currently covers;
    ``preferences`` — its startup preferences (§3.4, used by balance);
    ``mature`` — the bootstrap flag (§3.4);
    ``weight`` — relative capacity for load-based reallocation (§3.4).
    """

    __slots__ = ("sender", "view_id", "owned", "preferences", "mature", "weight")

    def __init__(self, sender, view_id, owned, preferences, mature, weight=1.0):
        self.sender = sender
        self.view_id = view_id
        self.owned = tuple(owned)
        self.preferences = tuple(preferences)
        self.mature = bool(mature)
        self.weight = float(weight)

    def __repr__(self):
        return "StateMsg({} view={} owned={} mature={})".format(
            self.sender, self.view_id, list(self.owned), self.mature
        )


class BalanceMsg:
    """The representative's re-balanced allocation (Algorithm 3)."""

    __slots__ = ("sender", "view_id", "allocation")

    def __init__(self, sender, view_id, allocation):
        self.sender = sender
        self.view_id = view_id
        self.allocation = dict(allocation)

    def __repr__(self):
        return "BalanceMsg({} view={} {} slots)".format(
            self.sender, self.view_id, len(self.allocation)
        )


class AllocMsg:
    """The representative's imposed allocation (§4.2 variant).

    In representative-allocation mode the members do not run
    Reallocate_IPs independently: the representative computes the
    allocation once all STATE messages are in and imposes it, "enabling
    changing the way virtual address allocation decisions are made
    without breaking version compatibility".
    """

    __slots__ = ("sender", "view_id", "allocation")

    def __init__(self, sender, view_id, allocation):
        self.sender = sender
        self.view_id = view_id
        self.allocation = dict(allocation)

    def __repr__(self):
        return "AllocMsg({} view={} {} slots)".format(
            self.sender, self.view_id, len(self.allocation)
        )


class MatureMsg:
    """Maturity-timeout notification (§3.4).

    Sent by a server whose maturity timeout expired with no mature
    peer in sight; on delivery every member marks itself mature and
    deterministically re-allocates the uncovered address space.
    """

    __slots__ = ("sender", "view_id")

    def __init__(self, sender, view_id):
        self.sender = sender
        self.view_id = view_id

    def __repr__(self):
        return "MatureMsg({} view={})".format(self.sender, self.view_id)


class ArpShareMsg:
    """Periodic ARP-cache exchange for targeted notification (§5.2)."""

    __slots__ = ("sender", "entries")

    def __init__(self, sender, entries):
        self.sender = sender
        self.entries = tuple(entries)

    def __repr__(self):
        return "ArpShareMsg({}, {} entries)".format(self.sender, len(self.entries))
