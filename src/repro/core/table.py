"""The virtual IP allocation table (``current_table`` in the paper).

Maps each VIP group (slot) to the member covering it, together with
the uniquely ordered membership list of the view the table belongs to.
During GATHER the table accumulates claims from STATE messages; in RUN
it is conflict-free and complete (Properties 1 and 2).
"""


class AllocationTable:
    """Slot -> owner mapping for one membership."""

    def __init__(self, slot_ids, members=()):
        self._owners = {slot: None for slot in slot_ids}
        self.members = tuple(members)

    @property
    def slots(self):
        """All slot ids, in configuration order."""
        return tuple(self._owners)

    def owner(self, slot):
        """Current owner of ``slot`` (None while uncovered)."""
        return self._owners[slot]

    def set_owner(self, slot, owner):
        """Assign ``slot`` to ``owner`` (or None to clear)."""
        if slot not in self._owners:
            raise KeyError("unknown slot {!r}".format(slot))
        if owner is not None and owner not in self.members:
            raise ValueError("owner {!r} not in membership".format(owner))
        self._owners[slot] = owner

    def release(self, slot):
        """Clear the owner of ``slot``."""
        self._owners[slot] = None

    def holes(self):
        """Slots currently covered by nobody, in slot order."""
        return tuple(slot for slot, owner in self._owners.items() if owner is None)

    def owned_by(self, member):
        """Slots covered by ``member``, in slot order."""
        return tuple(slot for slot, owner in self._owners.items() if owner == member)

    def counts(self):
        """{member: number of covered slots} over the full membership."""
        counts = {member: 0 for member in self.members}
        for owner in self._owners.values():
            if owner is not None:
                counts[owner] += 1
        return counts

    def position(self, member):
        """Index of ``member`` in the uniquely ordered membership list."""
        return self.members.index(member)

    def as_dict(self):
        """Plain dict copy of the allocation."""
        return dict(self._owners)

    def is_complete(self):
        """True when every slot has an owner."""
        return all(owner is not None for owner in self._owners.values())

    def copy(self):
        """Independent copy (same membership)."""
        table = AllocationTable(self._owners, self.members)
        table._owners = dict(self._owners)
        return table

    def __eq__(self, other):
        return (
            isinstance(other, AllocationTable)
            and self._owners == other._owners
            and self.members == other.members
        )

    def __repr__(self):
        return "AllocationTable({})".format(
            {slot: owner for slot, owner in self._owners.items()}
        )
