"""Daemon supervision: detect wedged or dead daemons and restart them.

The paper's architecture assumes the GCS daemon either works or
fail-stops; a real deployment also sees the *gray* case — the process
is scheduled, its port is bound, but it makes no progress (a deadlocked
event loop, a livelocked disk writer). Peers eventually evict it via
failure detection, but nothing on the host ever brings it back.

:class:`DaemonSupervisor` closes that gap the way production inits do:
a periodic local health check watches the host's Spread daemon for
death or stalled progress (no protocol traffic sent across several
consecutive checks while claiming to be up) and restarts it with a
capped exponential backoff. The Wackamole daemon, which reconnects to
"whatever GCS daemon currently runs on this host" on its own (§4.2),
is optionally supervised too for the process-killed-outright case.

Progress is judged from the daemon's ``messages_sent`` counter: a
healthy daemon heartbeats every ``heartbeat_timeout``, so the check
interval must exceed one heartbeat interval or a healthy daemon would
look stalled. Everything is deterministic — no randomness, restart ids
are sequence numbers — so supervised runs replay byte-identically.
"""

from repro.gcs.daemon import SpreadDaemon
from repro.sim.process import Process


class DaemonSupervisor(Process):
    """Local watchdog for one host's protocol daemons."""

    def __init__(
        self,
        host,
        check_interval=0.5,
        stall_checks=3,
        restart_backoff=1.0,
        backoff_cap=8.0,
        stable_after=10.0,
        on_restart=None,
    ):
        super().__init__(host.sim, "supervisor@{}".format(host.name))
        if stall_checks < 1:
            raise ValueError("stall_checks must be >= 1, got {}".format(stall_checks))
        self.host = host
        self.check_interval = float(check_interval)
        self.stall_checks = int(stall_checks)
        self.restart_backoff = float(restart_backoff)
        self.backoff_cap = float(backoff_cap)
        self.stable_after = float(stable_after)
        self.on_restart = on_restart
        host.register_service(self)
        self._wack = None
        self._timer = self.periodic(self._check, self.check_interval, name="supervise")
        self._last_progress = None  # (daemon, messages_sent)
        self._stalled_for = 0
        self._backoff = self.restart_backoff
        self._next_restart_at = 0.0
        self._last_restart_at = None
        self.restarts = 0
        self.wack_restarts = 0
        self.wedges_detected = 0
        self._m_restarts = self.sim.metrics.counter(
            "core.daemon_restarts", node=host.name
        )

    def watch_wackamole(self, daemon):
        """Also restart this host's Wackamole daemon if it dies."""
        self._wack = daemon

    @property
    def wackamole(self):
        """The currently supervised Wackamole daemon (tracks restarts)."""
        return self._wack

    def start(self):
        """Begin the periodic health checks."""
        self._timer.start()

    # ------------------------------------------------------------------

    def _check(self):
        if not self.host.alive:
            return
        if self._maybe_reset_backoff():
            pass
        daemon = getattr(self.host, "spread_daemon", None)
        if daemon is None:
            return
        if not daemon.alive:
            self._restart_spread(daemon, "dead")
        elif daemon.started and self._stalled(daemon):
            self.wedges_detected += 1
            self.trace("supervisor", "wedge_detected", daemon=daemon.daemon_id)
            self._restart_spread(daemon, "wedged")
        if self._wack is not None and not self._wack.alive:
            self._restart_wackamole()

    def _stalled(self, daemon):
        """True after ``stall_checks`` checks with no traffic sent."""
        sent = daemon.messages_sent
        last = self._last_progress
        self._last_progress = (daemon, sent)
        if last is None or last[0] is not daemon or last[1] != sent:
            self._stalled_for = 0
            return False
        self._stalled_for += 1
        return self._stalled_for >= self.stall_checks

    def _maybe_reset_backoff(self):
        if (
            self._last_restart_at is not None
            and self.now - self._last_restart_at >= self.stable_after
        ):
            self._backoff = self.restart_backoff
            self._last_restart_at = None
            return True
        return False

    def _restart_spread(self, old, cause):
        if self.now < self._next_restart_at:
            return
        self.restarts += 1
        self._m_restarts.inc()
        if old.alive:
            old.crash(cause="supervisor restart")
        replacement = SpreadDaemon(
            self.host,
            old.lan,
            config=old.config,
            daemon_id="{}-s{}".format(self.host.name, self.restarts),
            realtime=old.realtime,
        )
        replacement.start()
        self._last_progress = None
        self._stalled_for = 0
        self._arm_backoff()
        self.trace(
            "supervisor",
            "restart_spread",
            cause=cause,
            old=old.daemon_id,
            new=replacement.daemon_id,
        )
        if self.on_restart is not None:
            self.on_restart("spread", old, replacement)

    def _restart_wackamole(self):
        if self.now < self._next_restart_at:
            return
        old = self._wack
        self.wack_restarts += 1
        self._m_restarts.inc()
        spread = getattr(self.host, "spread_daemon", None)
        if spread is None:
            return
        from repro.core.daemon import WackamoleDaemon

        # Fresh client name: if the old session was never torn down the
        # daemon still holds it, and a name collision would wedge the
        # replacement in its reconnect loop forever.
        replacement = WackamoleDaemon(
            self.host,
            spread,
            old.config,
            client_name="{}-r{}".format(old.client_name, self.wack_restarts),
        )
        replacement.start()
        self._wack = replacement
        self._arm_backoff()
        self.trace("supervisor", "restart_wackamole", new=replacement.name)
        if self.on_restart is not None:
            self.on_restart("wackamole", old, replacement)

    def _arm_backoff(self):
        self._last_restart_at = self.now
        self._next_restart_at = self.now + self._backoff
        self._backoff = min(self._backoff * 2.0, self.backoff_cap)

    def __repr__(self):
        return "DaemonSupervisor({}, restarts={})".format(self.host.name, self.restarts)
