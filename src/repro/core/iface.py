"""The IP address control mechanism (acquire and release).

This is the platform-specific third of the paper's architecture
(Figure 1), reduced to its observable essence: bind or release every
address of a VIP group on the interface whose subnet contains it, and
announce acquisitions via (spoofed) ARP so the LAN repoints traffic.
"""


class InterfaceError(Exception):
    """A VIP address cannot be mapped onto any local interface."""


class InterfaceManager:
    """Enforces the synchronization algorithm's decisions on the NICs."""

    def __init__(self, host, config, notifier):
        self.host = host
        self.config = config
        self.notifier = notifier
        self._owned = set()
        self.acquisitions = 0
        self.releases = 0
        metrics = host.sim.metrics
        self._m_acquisitions = metrics.counter("core.vip_acquisitions", node=host.name)
        self._m_releases = metrics.counter("core.vip_releases", node=host.name)
        self._m_owned = metrics.timeseries("core.vips_owned", node=host.name)

    def owned_slots(self):
        """Ids of VIP groups currently bound locally, in config order."""
        return tuple(
            group.group_id
            for group in self.config.vip_groups
            if group.group_id in self._owned
        )

    def owns(self, slot_id):
        """True when the VIP group is currently bound here."""
        return slot_id in self._owned

    def acquire(self, slot_id):
        """Bind every address of the group and announce via ARP."""
        if slot_id in self._owned:
            return
        group = self.config.group(slot_id)
        bindings = [(self._nic_for(address), address) for address in group.addresses]
        for nic, address in bindings:
            nic.bind_ip(address)
        self._owned.add(slot_id)
        self.acquisitions += 1
        self._m_acquisitions.inc()
        self._m_owned.observe(len(self._owned))
        self.host.trace("wackamole", "acquire", slot=slot_id)
        for nic, address in bindings:
            self.notifier.announce(nic, address)

    def reannounce(self, slot_id):
        """Re-announce an already-held group without re-binding.

        Cache repair for gray failures: after an asymmetric partition
        heals (or a conflict is won), client caches may still point at
        a usurper even though the local binding never changed —
        :meth:`acquire` is idempotent and stays silent in that case.
        """
        if slot_id not in self._owned:
            return
        group = self.config.group(slot_id)
        for address in group.addresses:
            self.notifier.announce(self._nic_for(address), address)

    def reannounce_all(self):
        """Re-announce every held group (the periodic gratuitous pass)."""
        for slot_id in self.owned_slots():
            self.reannounce(slot_id)

    def release(self, slot_id):
        """Unbind every address of the group."""
        if slot_id not in self._owned:
            return
        group = self.config.group(slot_id)
        for address in group.addresses:
            nic = self._nic_for(address)
            nic.unbind_ip(address)
        self._owned.discard(slot_id)
        self.releases += 1
        self._m_releases.inc()
        self._m_owned.observe(len(self._owned))
        self.host.trace("wackamole", "release", slot=slot_id)

    def release_all(self):
        """Drop every managed address (used on GCS disconnection, §4.2)."""
        for slot_id in sorted(self._owned):
            self.release(slot_id)

    def _nic_for(self, address):
        for nic in self.host.nics:
            if address in nic.lan.subnet:
                return nic
        raise InterfaceError(
            "{} has no interface on a subnet containing {}".format(
                self.host.name, address
            )
        )
