"""ARP spoof notification (§5.1, §5.2).

After acquiring a virtual address, the new owner must repoint every
stale ARP cache on the segment. Three strategies, matching the paper:

* **broadcast** (default) — one gratuitous/spoofed reply to the whole
  segment; simple and sufficient for small LANs;
* **configured targets** — unicast replies to the hosts listed in
  ``notify_ips`` (the router in the web-cluster layout, Fig. 3);
* **shared caches** — daemons periodically exchange their ARP cache
  contents over the group, so the owner "approximately knows the set
  of machines that must be notified" (§5.2). Entries older than a TTL
  are garbage-collected (the targeting refinement §5.2 mentions as
  under investigation).
"""


class ArpNotifier:
    """Builds and sends the spoofed ARP replies for one daemon."""

    def __init__(self, host, config):
        self.host = host
        self.config = config
        self._shared = {}
        self.announcements = 0
        self.retries_sent = 0
        self._m_announcements = host.sim.metrics.counter(
            "core.arp_announcements", node=host.name
        )
        # The retry instrument only exists when retries are configured,
        # so historical runs keep their exact metric catalog.
        self._m_retries = None
        if config.arp_announce_retries > 0:
            self._m_retries = host.sim.metrics.counter(
                "core.arp_retries", node=host.name
            )

    def announce(self, nic, address):
        """Spoof ARP for ``address`` now owned by ``nic``.

        With ``arp_announce_retries`` > 0 the announcement is re-sent
        up to that many extra times with exponential backoff
        (``arp_announce_backoff`` doubling each round), abandoning the
        series as soon as the address is no longer bound here — a
        burst-lossy segment gets repointed by whichever copy survives.
        """
        self._announce_once(nic, address)
        if self.config.arp_announce_retries > 0:
            self.host.after(
                self.config.arp_announce_backoff,
                self._retry_announce,
                nic,
                address,
                1,
            )

    def _announce_once(self, nic, address):
        targets = self._target_macs(nic)
        self.announcements += 1
        self._m_announcements.inc()
        if targets:
            self.host.arp.announce(nic, address, target_macs=targets)
        else:
            self.host.arp.announce(nic, address)

    def _retry_announce(self, nic, address, attempt):
        if not nic.up or not nic.owns_ip(address):
            return
        self.retries_sent += 1
        self._m_retries.inc()
        self._announce_once(nic, address)
        if attempt < self.config.arp_announce_retries:
            self.host.after(
                self.config.arp_announce_backoff * (2 ** attempt),
                self._retry_announce,
                nic,
                address,
                attempt + 1,
            )

    def _target_macs(self, nic):
        """Unicast targets, or empty to request a broadcast."""
        macs = []
        incomplete = False
        for ip in self.config.notify_ips:
            if ip not in nic.lan.subnet:
                continue
            mac = self.host.arp.cache.lookup(ip)
            if mac is None:
                incomplete = True
            else:
                macs.append(mac)
        if self.config.arp_share_interval > 0:
            macs.extend(self._shared_macs(nic))
        if incomplete or (not macs and not self.config.notify_ips):
            return []
        return sorted(set(macs), key=lambda m: m.value) if macs else []

    # ------------------------------------------------------------------
    # shared-cache targeting (§5.2)

    def collect_entries(self):
        """Local cache contents, for the periodic share message."""
        snapshot = self.host.arp.cache.snapshot()
        return tuple((ip, mac) for ip, mac in sorted(snapshot.items()))

    def integrate_share(self, entries, now):
        """Merge a peer's shared cache entries."""
        for ip, mac in entries:
            self._shared[ip] = (mac, now)

    def _shared_macs(self, nic):
        now = self.host.sim.now
        ttl = self.config.arp_share_ttl
        live = []
        expired = []
        for ip, (mac, seen) in sorted(self._shared.items()):
            if now - seen > ttl:
                expired.append(ip)
            elif ip in nic.lan.subnet:
                live.append(mac)
        for ip in expired:
            del self._shared[ip]
        return live

    def shared_size(self):
        """Number of shared entries currently retained."""
        return len(self._shared)
