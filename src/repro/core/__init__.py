"""Wackamole: N-way IP fail-over (the paper's primary contribution).

The package implements the three components of Figure 1:

* the **state synchronization algorithm** (Algorithms 1–3: RUN /
  GATHER / BALANCE) in :mod:`repro.core.daemon`, with its deterministic
  procedures in :mod:`repro.core.conflict`, :mod:`repro.core.reallocate`
  and :mod:`repro.core.balance`;
* the **IP address control mechanism** in :mod:`repro.core.iface`
  (acquire/release on simulated NICs) and :mod:`repro.core.notify`
  (ARP spoofing, including §5.2's shared-cache targeted notification);
* the connection to the **group communication system** through the
  plain Spread client API.

Plus the practical considerations of §3.4/§4.2: maturity bootstrap,
load re-balancing with a representative, indivisible VIP groups for
router fail-over, the admin control channel, and the reconnect cycle
after losing the local GCS daemon.
"""

from repro.core.audit import CoverageAuditor, CoverageViolation
from repro.core.balance import compute_balanced_allocation
from repro.core.conffile import ConfigError, ParsedConfig, parse_wackamole_conf
from repro.core.config import VipGroup, WackamoleConfig
from repro.core.conflict import resolve_claim
from repro.core.control import AdminConsole, AdminControl
from repro.core.daemon import WackamoleDaemon
from repro.core.iface import InterfaceManager
from repro.core.messages import BalanceMsg, MatureMsg, StateMsg
from repro.core.notify import ArpNotifier
from repro.core.reallocate import reallocate_ips
from repro.core.state import BALANCE, GATHER, RUN
from repro.core.table import AllocationTable

__all__ = [
    "AdminConsole",
    "AdminControl",
    "AllocationTable",
    "ArpNotifier",
    "BALANCE",
    "BalanceMsg",
    "ConfigError",
    "CoverageAuditor",
    "CoverageViolation",
    "GATHER",
    "InterfaceManager",
    "MatureMsg",
    "ParsedConfig",
    "RUN",
    "StateMsg",
    "VipGroup",
    "WackamoleConfig",
    "WackamoleDaemon",
    "compute_balanced_allocation",
    "parse_wackamole_conf",
    "reallocate_ips",
    "resolve_claim",
]
