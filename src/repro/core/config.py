"""Wackamole configuration: virtual addresses and behaviour knobs."""

from repro.core.placement import PLACEMENT_LINEAR, PLACEMENT_STRATEGIES
from repro.net.addresses import IPAddress
from repro.stabilization import StabilizationConfig


class VipGroup:
    """An indivisible set of virtual addresses moved as one unit.

    Web clusters use single-address groups; the virtual-router
    application (§5.2) groups one address per network so a physical
    router always holds the complete set or none of it.
    """

    __slots__ = ("group_id", "addresses")

    def __init__(self, group_id, addresses):
        self.group_id = str(group_id)
        self.addresses = tuple(IPAddress(a) for a in addresses)
        if not self.addresses:
            raise ValueError("VIP group {!r} has no addresses".format(group_id))

    def __eq__(self, other):
        return (
            isinstance(other, VipGroup)
            and self.group_id == other.group_id
            and self.addresses == other.addresses
        )

    def __hash__(self):
        return hash(("VipGroup", self.group_id, self.addresses))

    def __repr__(self):
        return "VipGroup({}, {})".format(
            self.group_id, [str(a) for a in self.addresses]
        )


class WackamoleConfig:
    """Per-daemon configuration.

    Every entry corresponds to a behaviour the paper describes:

    * ``vip_groups`` — the virtual address set I (§3.1), possibly
      grouped into indivisible router sets (§5.2).
    * ``balance_enabled`` / ``balance_timeout`` — the RUN-state
      re-balancing procedure and its trigger (§3.4, Algorithm 3).
    * ``maturity_timeout`` — graceful bootstrap (§3.4).
    * ``prefer`` — explicit per-server preferences "specified by each
      server at startup and passed along through state messages".
    * ``notify_ips`` — hosts whose ARP caches must be repointed after
      an acquisition (the router in Fig. 3); empty means broadcast.
    * ``arp_share_interval`` — §5.2's periodic ARP-cache exchange for
      targeted notification (0 disables), with ``arp_share_ttl`` as the
      garbage-collection horizon the paper leaves as future work.
    * ``eager_conflict_resolution`` — drop overlapping VIPs as soon as
      a conflict is noticed (§3.4) instead of at the end of GATHER;
      switchable for the ablation bench.
    * ``reconnect_interval`` — the retry cycle after losing the local
      GCS daemon (§4.2).
    * ``representative_allocation`` — §4.2's alternative decision
      style: instead of every daemon running the deterministic
      Reallocate_IPs independently, the representative computes the
      allocation and imposes it on the members. Must be set uniformly
      across the cluster.
    * ``weight`` — this server's relative capacity for §3.4's
      "load-based reallocation": allocation and balancing target a
      share of the address pool proportional to the weight (travels in
      STATE messages like the preferences).
    * ``placement_strategy`` — how holes are filled and what the
      RUN-state balance targets: ``"linear"`` (default) is the paper's
      least-loaded/levelling pass; ``"rendezvous"`` is HRW hashing
      (:mod:`repro.core.placement`), whose minimal-disruption property
      makes a membership change move only the departed member's slots
      — the scale-tier choice. Must be set uniformly across the
      cluster (both strategies are deterministic, but they are
      *different* deterministic functions).

    Gray-failure hardening knobs (all default off / historical
    behaviour; see ``docs/FAULTS.md``):

    * ``arp_announce_retries`` / ``arp_announce_backoff`` — re-send
      each acquisition's spoofed ARP announcement up to N extra times
      with exponential backoff, so a burst-lossy segment still gets the
      caches repointed. 0 retries reproduces the single-shot paper
      behaviour.
    * ``arp_reannounce_interval`` — periodic gratuitous re-announcement
      of every held VIP (0 disables); repairs caches poisoned while a
      partition was asymmetric.
    * ``conflict_reannounce`` — when this daemon *wins* a duplicate-VIP
      conflict during GATHER, re-announce the kept address even though
      the interface was already bound (the loser's earlier announces
      may have repointed client caches the wrong way).
    * ``arp_conflict_resolution`` / ``arp_conflict_holddown`` — act on
      wire-level duplicate-claim detection (a foreign ARP claim for a
      held VIP): after the holddown, if the slot is still held and the
      conflict persists, the daemon with the losing (higher) member id
      releases. Detection itself is always on.
    * ``stabilization`` — a :class:`repro.stabilization.StabilizationConfig`
      gating the periodic local invariant audit: in RUN, the agreed
      allocation table and the actual interface bindings must agree;
      a lost binding is re-acquired (and re-announced), a binding the
      table assigns elsewhere is released. The default (interval 0)
      disables the audit — historical behaviour.
    """

    def __init__(
        self,
        vip_groups,
        group_name="wackamole",
        balance_enabled=True,
        balance_timeout=10.0,
        maturity_timeout=5.0,
        prefer=(),
        notify_ips=(),
        arp_share_interval=0.0,
        arp_share_ttl=120.0,
        eager_conflict_resolution=True,
        reconnect_interval=2.0,
        representative_allocation=False,
        weight=1.0,
        placement_strategy=PLACEMENT_LINEAR,
        arp_announce_retries=0,
        arp_announce_backoff=0.5,
        arp_reannounce_interval=0.0,
        conflict_reannounce=False,
        arp_conflict_resolution=False,
        arp_conflict_holddown=1.0,
        stabilization=None,
    ):
        self.vip_groups = tuple(vip_groups)
        if len({g.group_id for g in self.vip_groups}) != len(self.vip_groups):
            raise ValueError("duplicate VIP group ids")
        self.group_name = group_name
        self.balance_enabled = bool(balance_enabled)
        self.balance_timeout = float(balance_timeout)
        self.maturity_timeout = float(maturity_timeout)
        self.prefer = tuple(prefer)
        self.notify_ips = tuple(IPAddress(ip) for ip in notify_ips)
        self.arp_share_interval = float(arp_share_interval)
        self.arp_share_ttl = float(arp_share_ttl)
        self.eager_conflict_resolution = bool(eager_conflict_resolution)
        self.reconnect_interval = float(reconnect_interval)
        self.representative_allocation = bool(representative_allocation)
        if weight <= 0:
            raise ValueError("weight must be positive, got {}".format(weight))
        self.weight = float(weight)
        if placement_strategy not in PLACEMENT_STRATEGIES:
            raise ValueError(
                "placement_strategy must be one of {}, got {!r}".format(
                    PLACEMENT_STRATEGIES, placement_strategy
                )
            )
        self.placement_strategy = placement_strategy
        if int(arp_announce_retries) < 0:
            raise ValueError(
                "arp_announce_retries must be >= 0, got {}".format(arp_announce_retries)
            )
        if float(arp_announce_backoff) <= 0:
            raise ValueError(
                "arp_announce_backoff must be positive, got {}".format(arp_announce_backoff)
            )
        self.arp_announce_retries = int(arp_announce_retries)
        self.arp_announce_backoff = float(arp_announce_backoff)
        self.arp_reannounce_interval = float(arp_reannounce_interval)
        self.conflict_reannounce = bool(conflict_reannounce)
        self.arp_conflict_resolution = bool(arp_conflict_resolution)
        self.arp_conflict_holddown = float(arp_conflict_holddown)
        if stabilization is not None and not isinstance(stabilization, StabilizationConfig):
            raise TypeError("stabilization must be a StabilizationConfig or None")
        self.stabilization = stabilization or StabilizationConfig()
        unknown = set(self.prefer) - {g.group_id for g in self.vip_groups}
        if unknown:
            raise ValueError("preferences for unknown VIP groups: {}".format(sorted(unknown)))

    @classmethod
    def for_vips(cls, addresses, **kwargs):
        """Build a config with one single-address group per VIP."""
        groups = [VipGroup(str(IPAddress(a)), [a]) for a in addresses]
        return cls(groups, **kwargs)

    def slot_ids(self):
        """Ordered ids of all VIP groups (the allocation slots)."""
        return tuple(group.group_id for group in self.vip_groups)

    def group(self, group_id):
        """The VipGroup with the given id."""
        for group in self.vip_groups:
            if group.group_id == group_id:
                return group
        raise KeyError(group_id)

    def copy_for(self, **overrides):
        """A copy with selected fields replaced (used by scenario builders)."""
        fields = {
            "vip_groups": self.vip_groups,
            "group_name": self.group_name,
            "balance_enabled": self.balance_enabled,
            "balance_timeout": self.balance_timeout,
            "maturity_timeout": self.maturity_timeout,
            "prefer": self.prefer,
            "notify_ips": self.notify_ips,
            "arp_share_interval": self.arp_share_interval,
            "arp_share_ttl": self.arp_share_ttl,
            "eager_conflict_resolution": self.eager_conflict_resolution,
            "reconnect_interval": self.reconnect_interval,
            "representative_allocation": self.representative_allocation,
            "weight": self.weight,
            "placement_strategy": self.placement_strategy,
            "arp_announce_retries": self.arp_announce_retries,
            "arp_announce_backoff": self.arp_announce_backoff,
            "arp_reannounce_interval": self.arp_reannounce_interval,
            "conflict_reannounce": self.conflict_reannounce,
            "arp_conflict_resolution": self.arp_conflict_resolution,
            "arp_conflict_holddown": self.arp_conflict_holddown,
            "stabilization": self.stabilization,
        }
        fields.update(overrides)
        return WackamoleConfig(**fields)
