"""The Wackamole state machine (Figure 2).

Three states with the paper's transition set:

* RUN --VIEW_CHANGE--> GATHER
* GATHER --REALLOCATION COMPLETE--> RUN
* GATHER --VIEW_CHANGE--> GATHER (cascading changes restart the gather)
* RUN --BALANCE TIMEOUT--> BALANCE (representative only)
* BALANCE --BALANCE COMPLETE--> RUN
* RUN --BALANCE_MSG--> RUN (apply Change_IPs)

BALANCE executes as an atomic procedure (§3.4): the representative
computes and broadcasts the new allocation without yielding, so no
event can interleave before it returns to RUN.
"""

RUN = "RUN"
GATHER = "GATHER"
BALANCE = "BALANCE"

STATES = (RUN, GATHER, BALANCE)

#: The legal transitions of Figure 2, as (from_state, event, to_state).
TRANSITIONS = frozenset(
    {
        (RUN, "VIEW_CHANGE", GATHER),
        (GATHER, "VIEW_CHANGE", GATHER),
        (GATHER, "REALLOCATION_COMPLETE", RUN),
        (RUN, "BALANCE_TIMEOUT", BALANCE),
        (BALANCE, "BALANCE_COMPLETE", RUN),
        (RUN, "BALANCE_MSG", RUN),
        (GATHER, "BALANCE_MSG", GATHER),
    }
)


class IllegalTransition(Exception):
    """A transition not present in Figure 2 was attempted."""


class StateMachine:
    """Explicit state holder that validates transitions against Figure 2."""

    def __init__(self, trace=None):
        self.state = RUN
        self.history = []
        self._trace = trace

    def fire(self, event):
        """Apply ``event``; returns the new state."""
        for from_state, transition_event, to_state in TRANSITIONS:
            if from_state == self.state and transition_event == event:
                self.history.append((self.state, event, to_state))
                self.state = to_state
                if self._trace is not None:
                    self._trace(event, to_state)
                return self.state
        raise IllegalTransition(
            "no transition for event {!r} from state {}".format(event, self.state)
        )

    def can_fire(self, event):
        """True when ``event`` is legal in the current state."""
        return any(
            from_state == self.state and transition_event == event
            for from_state, transition_event, _ in TRANSITIONS
        )

    def transition_counts(self):
        """``{(event, to_state): count}`` over the recorded history.

        Sorted by key so the summary is deterministic regardless of the
        order transitions fired in.
        """
        counts = {}
        for _, event, to_state in self.history:
            key = (event, to_state)
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))
