"""Reproduction of "N-Way Fail-Over Infrastructure for Reliable Servers
and Routers" (Amir, Caudy, Munjal, Schlossnagle, Tutu - DSN 2003), the
Wackamole system.

Subpackages, bottom-up:

* :mod:`repro.sim` - deterministic discrete-event simulation kernel.
* :mod:`repro.net` - simulated LAN: NICs with virtual-IP binding, ARP
  caches and spoofing, UDP, IP routers, partitions and fault injection.
* :mod:`repro.gcs` - a Spread-like group communication system: daemon
  membership with the Table 1 timeouts, Virtual Synchrony, agreed
  (totally ordered) delivery, client sessions and process groups.
* :mod:`repro.core` - **Wackamole**, the paper's contribution: the
  RUN/GATHER/BALANCE state machine, deterministic conflict resolution
  and reallocation, load balancing, maturity bootstrap, indivisible
  router VIP groups, interface control, ARP notification, and the
  administrative channel.
* :mod:`repro.baselines` - VRRP, HSRP and Linux-Fake comparison
  protocols with the paper-quoted default timers.
* :mod:`repro.apps` - the web-cluster (Fig. 3) and virtual-router
  (Fig. 4) deployments plus a RIP-style dynamic routing stand-in.
* :mod:`repro.experiments` - regenerates every table and figure of the
  evaluation (section 6) with the paper's measurement methodology.

Entry point for most uses: build a :class:`repro.sim.Simulation`, wire
hosts and daemons (or use a scenario builder from :mod:`repro.apps`),
run, and audit with :class:`repro.core.CoverageAuditor`.
"""

__version__ = "1.0.0"
