"""Hot Standby Router Protocol (Cisco) — baseline.

§7: "HSRP elects one router to be the active router and another to be
the standby router. The active and the standby routers send hello
messages … After an Active timeout elapses without hearing hello
messages from the active router, the standby router takes over.
By default, hello messages are sent every 3 seconds and the Active and
Standby timeouts are set to 10 seconds."
"""

from repro.net.addresses import IPAddress
from repro.sim.process import Process

LEARN = "LEARN"
LISTEN = "LISTEN"
STANDBY = "STANDBY"
ACTIVE = "ACTIVE"

HSRP_PORT = 1985


class HsrpHello:
    """Hello message carrying the sender's role and priority."""

    __slots__ = ("sender", "role", "priority")

    def __init__(self, sender, role, priority):
        self.sender = sender
        self.role = role
        self.priority = priority

    def __repr__(self):
        return "HsrpHello({}, {}, prio={})".format(self.sender, self.role, self.priority)


class HsrpRouter(Process):
    """One HSRP group member managing a single virtual address."""

    def __init__(
        self, host, lan, vip, priority, hello_interval=3.0, hold_time=10.0
    ):
        super().__init__(host.sim, "hsrp@{}".format(host.name))
        self.host = host
        self.lan = lan
        self.vip = IPAddress(vip)
        self.priority = priority
        self.hello_interval = float(hello_interval)
        self.hold_time = float(hold_time)
        self.state = LEARN
        host.register_service(self)
        self._socket = host.open_udp(HSRP_PORT, self._on_packet)
        self._hello_timer = self.periodic(self._send_hello, self.hello_interval, name="hello")
        self._active_timer = self.timer(self._on_active_timeout, name="active")
        self._standby_timer = self.timer(self._on_standby_timeout, name="standby")
        self.transitions = []

    def start(self):
        """Begin listening; election happens via hello exchange."""
        self._set_state(LISTEN)
        self._hello_timer.start(first_delay=0.0)
        self._active_timer.start(self.hold_time)
        self._standby_timer.start(self.hold_time)

    # ------------------------------------------------------------------

    def _send_hello(self):
        if self.state in (ACTIVE, STANDBY):
            self._broadcast(HsrpHello(self.host.name, self.state, self.priority))
        elif self.state == LISTEN:
            # Speak period: contend for standby/active when none heard.
            self._broadcast(HsrpHello(self.host.name, LISTEN, self.priority))

    def _broadcast(self, hello):
        self.host.send_udp(
            hello, self.lan.subnet.broadcast_address, HSRP_PORT, src_port=HSRP_PORT
        )

    def _on_packet(self, hello, src, dst):
        if not self.alive or not isinstance(hello, HsrpHello):
            return
        if hello.sender == self.host.name:
            return
        mine = (self.priority, self.host.name)
        theirs = (hello.priority, hello.sender)
        if hello.role == ACTIVE:
            if self.state == ACTIVE and theirs > mine:
                self._resign_active()
            if self.state != ACTIVE:
                self._active_timer.start(self.hold_time)
        elif hello.role == STANDBY:
            if self.state == STANDBY and theirs > mine:
                self._set_state(LISTEN)
            if self.state != STANDBY:
                self._standby_timer.start(self.hold_time)
        elif hello.role == LISTEN and self.state == LISTEN and theirs > mine:
            # A better-placed speaker exists; restart our patience.
            self._active_timer.start(self.hold_time)
            self._standby_timer.start(self.hold_time)

    def _on_active_timeout(self):
        # Only the standby router may take over the active role; a
        # listener re-arms and waits to be promoted to standby first.
        if self.state == STANDBY:
            self._become_active()
        elif self.state == LISTEN:
            self._active_timer.start(self.hold_time)

    def _on_standby_timeout(self):
        if self.state == LISTEN:
            self._set_state(STANDBY)
            self._send_hello()

    def _become_active(self):
        self._set_state(ACTIVE)
        nic = self.host.nic_on(self.lan)
        nic.bind_ip(self.vip)
        self.host.arp.announce(nic, self.vip)
        self._send_hello()

    def _resign_active(self):
        nic = self.host.nic_on(self.lan)
        if nic.owns_ip(self.vip) and self.vip != nic.primary_ip:
            nic.unbind_ip(self.vip)
        self._set_state(LISTEN)
        self._active_timer.start(self.hold_time)
        self._standby_timer.start(self.hold_time)

    def _set_state(self, state):
        self.transitions.append((self.now, state))
        self.state = state
        self.trace("hsrp", "state", state=state)

    def __repr__(self):
        return "HsrpRouter({}, {}, prio={})".format(self.host.name, self.state, self.priority)
