"""Virtual Router Redundancy Protocol (RFC 2338) — baseline.

An election protocol that "dynamically assigns responsibility for a
virtual router to one of the VRRP routers on a LAN" (§7). The master
broadcasts advertisements every second (default); backups take over
after the master-down interval ``3 x advertisement_interval +
skew_time`` where ``skew = (256 - priority) / 256`` — so with defaults
a failure is repaired after roughly 3–4 seconds.
"""

from repro.net.addresses import IPAddress
from repro.sim.process import Process

INIT = "INIT"
BACKUP = "BACKUP"
MASTER = "MASTER"

VRRP_PORT = 112


class VrrpAdvertisement:
    """One VRRP advertisement (priority 0 announces a resignation)."""

    __slots__ = ("sender", "priority", "vip")

    def __init__(self, sender, priority, vip):
        self.sender = sender
        self.priority = priority
        self.vip = vip

    def __repr__(self):
        return "VrrpAdvertisement({}, prio={})".format(self.sender, self.priority)


class VrrpRouter(Process):
    """One VRRP instance managing a single virtual address."""

    def __init__(self, host, lan, vip, priority, advert_interval=1.0, preempt=True):
        super().__init__(host.sim, "vrrp@{}".format(host.name))
        if not 1 <= priority <= 254:
            raise ValueError("priority must be in 1..254, got {}".format(priority))
        self.host = host
        self.lan = lan
        self.vip = IPAddress(vip)
        self.priority = priority
        self.advert_interval = float(advert_interval)
        self.preempt = preempt
        self.state = INIT
        host.register_service(self)
        self._socket = host.open_udp(VRRP_PORT, self._on_packet)
        self._advert_timer = self.periodic(
            self._send_advertisement, self.advert_interval, name="advert"
        )
        self._master_down_timer = self.timer(self._on_master_down, name="master_down")
        self.transitions = []

    @property
    def skew_time(self):
        """Priority-derived head start for higher-priority backups."""
        return (256 - self.priority) / 256.0

    @property
    def master_down_interval(self):
        """Time without advertisements before a backup takes over."""
        return 3.0 * self.advert_interval + self.skew_time

    def start(self):
        """Join the election; the highest priority becomes master."""
        # RFC 2338: the address owner starts as master; equal-priority
        # contenders resolve via advertisements and preemption.
        self._become_backup()

    def shutdown(self):
        """Graceful stop: a priority-0 advertisement hands off quickly."""
        if self.state == MASTER:
            self._broadcast(VrrpAdvertisement(self.host.name, 0, self.vip))
            self._release_vip()
        self.stop()

    # ------------------------------------------------------------------

    def _become_backup(self):
        self._set_state(BACKUP)
        self._advert_timer.stop()
        self._release_vip()
        self._master_down_timer.start(self.master_down_interval)

    def _become_master(self):
        self._set_state(MASTER)
        self._master_down_timer.cancel()
        nic = self.host.nic_on(self.lan)
        nic.bind_ip(self.vip)
        self.host.arp.announce(nic, self.vip)
        self._send_advertisement()
        self._advert_timer.start()

    def _release_vip(self):
        nic = self.host.nic_on(self.lan)
        if nic.owns_ip(self.vip) and self.vip != nic.primary_ip:
            nic.unbind_ip(self.vip)

    def _on_master_down(self):
        if self.state == BACKUP:
            self._become_master()

    def _send_advertisement(self):
        if self.state == MASTER:
            self._broadcast(VrrpAdvertisement(self.host.name, self.priority, self.vip))

    def _broadcast(self, advert):
        self.host.send_udp(
            advert, self.lan.subnet.broadcast_address, VRRP_PORT, src_port=VRRP_PORT
        )

    def _on_packet(self, advert, src, dst):
        if not self.alive or not isinstance(advert, VrrpAdvertisement):
            return
        if advert.vip != self.vip or advert.sender == self.host.name:
            return
        if advert.priority == 0:
            # Master resigned; race in after only the skew time.
            if self.state == BACKUP:
                self._master_down_timer.start(self.skew_time)
            return
        if self.state == MASTER:
            if advert.priority > self.priority:
                self._become_backup()
            # Lower priority advertisements are ignored; the other
            # master will step down when it hears ours.
            return
        if self.state == BACKUP:
            if advert.priority >= self.priority or not self.preempt:
                self._master_down_timer.start(self.master_down_interval)
            # A lower-priority master with preemption enabled: let the
            # timer run out and take over.

    def _set_state(self, state):
        self.transitions.append((self.now, state))
        self.state = state
        self.trace("vrrp", "state", state=state)

    def __repr__(self):
        return "VrrpRouter({}, {}, prio={})".format(self.host.name, self.state, self.priority)
