"""Baseline fail-over protocols from the paper's related work (§7).

Implemented with the default timers the paper quotes, for the
comparison benches:

* :class:`VrrpRouter` — VRRP (RFC 2338): advertisement interval 1 s,
  master-down interval ``3 x advert + skew``;
* :class:`HsrpRouter` — Cisco HSRP: hello every 3 s, active/standby
  timeouts of 10 s;
* :class:`FakeFailover` — the Linux Fake project: service probing plus
  gratuitous ARP takeover by a designated backup.

Unlike Wackamole these provide 1(+backup) fail-over for a *single*
virtual address (set), not N-way coverage of an address pool, and none
gives partition-merge conflict resolution — which is exactly the
comparison the paper draws.
"""

from repro.baselines.fake import FakeFailover
from repro.baselines.hsrp import HsrpRouter
from repro.baselines.vrrp import VrrpRouter

__all__ = ["FakeFailover", "HsrpRouter", "VrrpRouter"]
