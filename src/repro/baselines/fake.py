"""The Linux Fake project — baseline (§7).

"Provides IP fail-over through service-probing and ARP-spoofing. The
availability of the main server is probed regularly and upon failure
detection a backup server instantiates a virtual IP interface that
will take over the failed one and send a gratuitous ARP request to
accelerate the transition."

Pairwise only: one designated backup probes one main server. No
merge/conflict handling — if the main comes back, both answer until an
operator intervenes (the backup here optionally yields when a probe
reply reappears, which is the common scripted extension).
"""

from repro.net.addresses import IPAddress
from repro.sim.process import Process

FAKE_PROBE_PORT = 1490


class FakeFailover(Process):
    """Backup server probing a main server's address."""

    def __init__(
        self,
        host,
        lan,
        vip,
        probe_target,
        probe_interval=1.0,
        probe_timeout=0.5,
        failure_threshold=3,
        yield_on_return=False,
    ):
        super().__init__(host.sim, "fake@{}".format(host.name))
        self.host = host
        self.lan = lan
        self.vip = IPAddress(vip)
        self.probe_target = IPAddress(probe_target)
        self.probe_interval = float(probe_interval)
        self.probe_timeout = float(probe_timeout)
        self.failure_threshold = int(failure_threshold)
        self.yield_on_return = yield_on_return
        self.taken_over = False
        self.consecutive_failures = 0
        self.probes_sent = 0
        host.register_service(self)
        self._socket = host.open_udp(FAKE_PROBE_PORT, self._on_reply)
        self._probe_timer = self.periodic(self._probe, self.probe_interval, name="probe")
        self._reply_timer = self.timer(self._on_probe_timeout, name="reply")
        self._seq = 0
        self._awaiting = None

    @staticmethod
    def serve_probes(host, port=FAKE_PROBE_PORT):
        """Install the probe responder on the *main* server."""

        def respond(payload, src, dst):
            if not (isinstance(payload, tuple) and len(payload) == 2):
                return
            kind, seq = payload
            if kind == "probe":
                host.send_udp(("reply", seq), src[0], src[1], src_port=port)

        return host.open_udp(port, respond)

    def start(self):
        """Begin the probe cycle."""
        self._probe_timer.start(first_delay=0.0)

    # ------------------------------------------------------------------

    def _probe(self):
        self._seq += 1
        self._awaiting = self._seq
        self.probes_sent += 1
        self.host.send_udp(
            ("probe", self._seq), self.probe_target, FAKE_PROBE_PORT,
            src_port=FAKE_PROBE_PORT,
        )
        self._reply_timer.start(self.probe_timeout)

    def _on_reply(self, payload, src, dst):
        if not self.alive or not isinstance(payload, tuple):
            return
        kind, seq = payload
        if kind != "reply" or seq != self._awaiting:
            return
        self._awaiting = None
        self._reply_timer.cancel()
        self.consecutive_failures = 0
        if self.taken_over and self.yield_on_return:
            self._yield_vip()

    def _on_probe_timeout(self):
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold and not self.taken_over:
            self._take_over()

    def _take_over(self):
        self.taken_over = True
        nic = self.host.nic_on(self.lan)
        nic.bind_ip(self.vip)
        self.host.arp.announce(nic, self.vip)
        self.trace("fake", "takeover", vip=str(self.vip))

    def _yield_vip(self):
        self.taken_over = False
        nic = self.host.nic_on(self.lan)
        if nic.owns_ip(self.vip) and self.vip != nic.primary_ip:
            nic.unbind_ip(self.vip)
        self.trace("fake", "yield", vip=str(self.vip))

    def __repr__(self):
        return "FakeFailover({}, taken_over={})".format(self.host.name, self.taken_over)
